// TaskGraph: first-class capture/replay of dependence DAGs — the serving
// core the ROADMAP's north star asks for ("millions of identical small
// request-DAGs per second").
//
// The spawn-with-deps path rebuilds the whole graph every execution:
// hash-map frontier lookups, a TaskDepState allocation per node, and a
// CAS-pushed release-list node per edge. For a request-shaped DAG executed
// millions of times that is pure overhead — the topology never changes,
// only the data. TaskGraph splits the two:
//
//   capture — the build function runs once under instrumentation: every
//     Capture::node(body, {deps}) call records a node (body stored
//     in-place, re-invocable) and resolves its dependences against the
//     same in/out/inout frontier semantics as live spawns (the shared
//     detail::DepFrontier — one semantics, two consumers), then the
//     recorded graph executes once through the runtime. seal() freezes
//     the structure into CSR successor arrays, per-node initial
//     predecessor counts, the root set, and the critical path.
//
//   replay — re-executes the sealed graph with zero rebuild cost. All
//     mutable state lives in an Instance: one atomic countdown per node
//     plus one for the whole replay, reset() touches counters only (no
//     allocation, no map, no edge construction). Roots are dispatched
//     with spawn_batch's remote-first round-robin, which spreads them
//     across the team's zones before the first edge fires (topology-aware
//     initial placement); every released successor then flows through the
//     normal XQueue/DLB/adaptive dispatch path like any other task.
//
// Replays on one Instance are sequential; concurrent in-flight replays of
// the same graph (the serve front-end) each use their own Instance — the
// graph itself is immutable after seal() and shared freely.
//
// Cost model (DESIGN.md "Task-graph engine" has the numbers): rebuild
// pays O(nodes + edges) allocations and frontier updates per execution;
// replay pays O(nodes) relaxed stores in reset() and two atomics per
// node at run time. The request-pipeline benchmark gates replay at >= 3x
// rebuild throughput (bench/bench_graph.cpp, run_bench.py --gate-graph).
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/common.hpp"
#include "core/dependency.hpp"
#include "core/runtime.hpp"

namespace xtask {

class TaskGraph {
 public:
  /// Inline storage per node body; same budget as Task::kPayloadBytes so
  /// anything spawnable is capturable.
  static constexpr std::size_t kNodePayloadBytes = 128;

  TaskGraph() = default;
  ~TaskGraph() { destroy_nodes(); }
  TaskGraph(TaskGraph&& o) noexcept : TaskGraph() { *this = std::move(o); }
  TaskGraph& operator=(TaskGraph&& o) noexcept {
    if (this != &o) {
      destroy_nodes();
      nodes_ = std::move(o.nodes_);
      succs_ = std::move(o.succs_);
      roots_ = std::move(o.roots_);
      build_ = std::move(o.build_);
      num_edges_ = o.num_edges_;
      critical_path_ = o.critical_path_;
      sealed_ = o.sealed_;
      o.nodes_.clear();
      o.sealed_ = false;
    }
    return *this;
  }
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Recording handle passed to the build function.
  class Capture {
   public:
    /// Record one node ordered by `deps` (same in/out/inout semantics as
    /// ctx.spawn(body, deps)). `f` must be invocable as f(TaskContext&),
    /// fit kNodePayloadBytes, and be safely invocable once per replay.
    /// Returns the node id (a topological order by construction).
    template <typename F>
    std::uint32_t node(F&& f, std::initializer_list<Dep> deps) {
      return g_->add_node(std::forward<F>(f), deps.begin(), deps.size());
    }
    /// A node with no dependences (always a root unless deps say so).
    template <typename F>
    std::uint32_t node(F&& f) {
      return g_->add_node(std::forward<F>(f), nullptr, 0);
    }
    /// Runtime-sized dependence list (mirrors ctx.spawn(f, deps, n)).
    template <typename F>
    std::uint32_t node(F&& f, const Dep* deps, std::size_t ndeps) {
      return g_->add_node(std::forward<F>(f), deps, ndeps);
    }

   private:
    friend class TaskGraph;
    explicit Capture(TaskGraph* g) noexcept : g_(g) {}
    TaskGraph* g_;
  };

  /// Record a graph from one instrumented execution: `build` runs once
  /// (its node() calls are recorded, not dispatched), the structure is
  /// sealed, and the captured graph executes once through `rt` — so a
  /// capture *is* an execution of the workload, with the graph retained.
  template <typename BuildFn>
  static TaskGraph capture(Runtime& rt, BuildFn&& build) {
    TaskGraph g = record(std::forward<BuildFn>(build));
    g.replay(rt, 1);
    return g;
  }

  /// Record + seal without executing (serve registration, structural
  /// tests). The first replay is then the first execution.
  template <typename BuildFn>
  static TaskGraph record(BuildFn&& build) {
    TaskGraph g;
    Capture cap(&g);
    build(cap);
    g.seal();
    return g;
  }

  /// Per-replay mutable state: one pending-predecessor countdown per node
  /// and a whole-replay countdown. Preallocated once; reset() between
  /// replays touches counters only. One Instance supports one in-flight
  /// replay at a time; concurrent replays use separate Instances.
  class Instance {
   public:
    explicit Instance(const TaskGraph& g);

    /// Re-arm for the next replay. Must not run while a replay on this
    /// instance is in flight.
    void reset() noexcept;

    /// True when no replay is in flight (all nodes of the last one ran).
    bool idle() const noexcept {
      return remaining_.load(std::memory_order_acquire) == 0;
    }

    /// Completion hook for the current replay: fired exactly once, on the
    /// worker that finishes the last node. Cleared by reset().
    using DoneFn = void (*)(void* arg);
    void arm(DoneFn fn, void* arg) noexcept {
      done_fn_ = fn;
      done_arg_ = arg;
    }

    const TaskGraph& graph() const noexcept { return *g_; }

   private:
    friend class TaskGraph;
    const TaskGraph* g_;
    std::unique_ptr<xtask::atomic<std::uint32_t>[]> pending_;  // per node
    xtask::atomic<std::uint32_t> remaining_{0};
    DoneFn done_fn_ = nullptr;
    void* done_arg_ = nullptr;
  };

  /// Execute the sealed graph `times` times, one parallel region each,
  /// reusing a single Instance (counter reset between replays is the only
  /// per-iteration cost besides the region itself).
  void replay(Runtime& rt, int times) const;

  /// Launch one replay inside a running region: dispatches the root nodes
  /// as children of the current task and returns immediately; completion
  /// is the instance's arm() hook (or the enclosing region barrier, which
  /// always covers every node). `inst` must be reset() and not in flight.
  void replay_async(TaskContext& ctx, Instance* inst) const;

  // --- introspection (per-graph structure counters) -----------------------
  bool sealed() const noexcept { return sealed_; }
  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t num_edges() const noexcept { return num_edges_; }
  std::uint32_t num_roots() const noexcept {
    return static_cast<std::uint32_t>(roots_.size());
  }
  /// Nodes on the longest dependence chain (unit node weights): the
  /// replay's parallelism ceiling is num_nodes / critical_path.
  std::uint32_t critical_path() const noexcept { return critical_path_; }

 private:
  struct Node {
    void (*run)(const Node*, TaskContext&) = nullptr;
    void (*destroy)(Node*) noexcept = nullptr;  // null: trivially dtor
    std::uint32_t succ_begin = 0;  // CSR slice into succs_
    std::uint32_t succ_count = 0;
    std::uint32_t init_preds = 0;  // incoming edge count (0 = root)
    alignas(16) unsigned char payload[kNodePayloadBytes];
  };

  /// Capture-time scratch, discarded at seal().
  struct BuildState {
    detail::DepFrontier<std::uint32_t> frontier;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  };

  /// The spawned trampoline: runs the node body, releases its successors
  /// against the instance counters, spawns the newly ready ones.
  struct NodeTask {
    Instance* inst;
    std::uint32_t id;
    void operator()(TaskContext& ctx) const;
  };

  template <typename F>
  std::uint32_t add_node(F&& f, const Dep* deps, std::size_t count) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kNodePayloadBytes,
                  "graph node closure too large for inline payload");
    static_assert(std::is_invocable_v<Fn&, TaskContext&>,
                  "graph node body must be callable with (TaskContext&)");
    XTASK_CHECK(!sealed_);
    // deque: node addresses are stable under growth, so non-trivially-
    // copyable bodies are safe (a vector would memmove them on realloc).
    nodes_.emplace_back();
    Node& nd = nodes_.back();
    ::new (static_cast<void*>(nd.payload)) Fn(std::forward<F>(f));
    nd.run = [](const Node* node, TaskContext& ctx) {
      // Const-cast matches Task::emplace's contract: the body is mutable
      // state owned by the node; the graph structure around it is not.
      auto* fn = std::launder(
          reinterpret_cast<Fn*>(const_cast<unsigned char*>(node->payload)));
      (*fn)(ctx);
    };
    if constexpr (!std::is_trivially_destructible_v<Fn>) {
      nd.destroy = [](Node* node) noexcept {
        std::launder(reinterpret_cast<Fn*>(node->payload))->~Fn();
      };
    }
    const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
    record_deps(id, deps, count);
    return id;
  }

  void record_deps(std::uint32_t id, const Dep* deps, std::size_t count);
  void seal();
  void destroy_nodes() noexcept {
    for (Node& n : nodes_)
      if (n.destroy != nullptr) n.destroy(&n);
    nodes_.clear();
  }

  std::deque<Node> nodes_;
  std::vector<std::uint32_t> succs_;  // CSR successor ids
  std::vector<std::uint32_t> roots_;  // init_preds == 0
  std::unique_ptr<BuildState> build_;
  std::uint32_t num_edges_ = 0;
  std::uint32_t critical_path_ = 0;
  bool sealed_ = false;
};

}  // namespace xtask
