// NUMA topology abstraction: maps worker ids to NUMA zones and answers
// locality queries for the NUMA-aware load balancers (paper §IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xtask {

/// Describes how worker threads are laid out over NUMA zones.
///
/// The paper evaluates on a Skylake-192 with 8 NUMA zones and binds threads
/// with `close` affinity: workers [0,24) live in zone 0, [24,48) in zone 1,
/// and so on. `Topology` reproduces that mapping. When the host genuinely
/// has multiple NUMA nodes the mapping can be read from sysfs
/// (`Topology::detect`); on single-node hosts (such as this reproduction's
/// build machine) a synthetic topology keeps every NUMA-aware code path live
/// by partitioning workers into virtual zones.
class Topology {
 public:
  /// Synthetic topology: `num_workers` workers striped contiguously
  /// ("close" affinity) over `num_zones` zones. Zones are balanced to within
  /// one worker. `num_zones` is clamped to [1, num_workers].
  static Topology synthetic(int num_workers, int num_zones);

  /// Topology read from the operating system (Linux sysfs). Workers are
  /// assumed bound round-robin over online CPUs in id order, matching
  /// OMP_PLACES=cores + close affinity. Falls back to a single zone when
  /// sysfs is unavailable.
  static Topology detect(int num_workers);

  /// Parse a machine-shape spec string — the single grammar shared by the
  /// real runtimes, the discrete-event simulator, and the backend
  /// registry's `XTASK_TOPOLOGY` override:
  ///   "ZxW"    Z zones of W workers each ("8x24" = the paper's
  ///            Skylake-192: 8 NUMA zones x 24 cores)
  ///   "a:b:c"  explicit per-zone worker counts (uneven shapes)
  ///   "N"      N workers in a single zone
  ///   "auto"   detect from the OS; `default_workers` workers (or
  ///            hardware_concurrency when 0)
  /// Throws std::invalid_argument on malformed specs; every zone and
  /// worker count must be >= 1.
  static Topology parse(const std::string& spec, int default_workers = 0);

  /// Canonical spec string for this topology's shape: "ZxW" when every
  /// zone holds the same number of workers, the explicit "a:b:c" form
  /// otherwise. `parse(spec())` reproduces the same shape (zone count and
  /// sizes; worker->zone striping is always the canonical contiguous
  /// "close" layout).
  std::string spec() const;

  Topology() = default;

  int num_workers() const noexcept { return static_cast<int>(zone_of_.size()); }
  int num_zones() const noexcept { return static_cast<int>(members_.size()); }

  /// Zone that worker `w` belongs to.
  int zone_of(int w) const noexcept { return zone_of_[static_cast<size_t>(w)]; }

  /// True when two workers share a NUMA zone.
  bool local(int a, int b) const noexcept { return zone_of(a) == zone_of(b); }

  /// Workers belonging to `zone`, in id order.
  const std::vector<int>& zone_members(int zone) const noexcept {
    return members_[static_cast<size_t>(zone)];
  }

  /// Workers in the same zone as `w` (including `w` itself).
  const std::vector<int>& peers_of(int w) const noexcept {
    return members_[static_cast<size_t>(zone_of(w))];
  }

  std::string describe() const;

 private:
  std::vector<int> zone_of_;               // worker id -> zone id
  std::vector<std::vector<int>> members_;  // zone id -> worker ids
};

}  // namespace xtask
