// Centralized team barrier in the style GOMP uses (paper §III-B baseline):
// a shared arrival counter plus the global task count. XGOMP keeps this
// barrier but drives it with an atomic task count instead of the global
// task lock; the GOMP baseline in src/gomp wraps the same structure in a
// mutex to reproduce the original's lock traffic.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/common.hpp"

namespace xtask {

/// Termination barrier for one team. A worker "arrives" when it first goes
/// idle at the end of the parallel region, keeps executing tasks while
/// waiting, and is released once every worker has arrived and the global
/// task count has drained to zero.
///
/// Reusable across parallel regions via a generation counter.
class CentralBarrier {
 public:
  explicit CentralBarrier(int num_workers) : n_(num_workers) {}

  /// Global in-flight task count (queued + running). Incremented at task
  /// creation, decremented at completion. This is the single hot atomic
  /// whose cache-line ping-pong the tree barrier exists to eliminate.
  void task_created() noexcept {
    task_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  void task_finished() noexcept {
    task_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
  std::int64_t task_count() const noexcept {
    return task_count_.load(std::memory_order_acquire);
  }

  /// Worker `tid` signals it reached the barrier of generation `gen`
  /// (generations count parallel regions, starting at 1). Idempotent per
  /// generation per worker — the runtime calls it once.
  void arrive(std::uint64_t gen) noexcept {
    (void)gen;
    arrived_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Poll for release. The *last* poller that observes full arrival and a
  /// drained task count publishes the release for everyone.
  bool poll(std::uint64_t gen) noexcept {
    if (released_.load(std::memory_order_acquire) >= gen) return true;
    if (arrived_.load(std::memory_order_acquire) == n_ &&
        task_count_.load(std::memory_order_acquire) == 0) {
      // Several workers may all observe the condition; the store is
      // idempotent (same generation value), so no CAS is needed.
      arrived_.store(0, std::memory_order_relaxed);
      released_.store(gen, std::memory_order_release);
      return true;
    }
    return false;
  }

 private:
  const int n_;
  alignas(kCacheLine) atomic<std::int64_t> task_count_{0};
  alignas(kCacheLine) atomic<int> arrived_{0};
  alignas(kCacheLine) atomic<std::uint64_t> released_{0};
};

}  // namespace xtask
