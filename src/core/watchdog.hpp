// Worker watchdog: a lightweight monitor thread that detects the absence
// of global scheduler progress over a configurable window and hands a
// diagnostic snapshot to a handler instead of letting a wedged region hang
// forever (CI's most expensive failure mode).
//
// "Progress" is a monotone signature supplied by the owner — for the xtask
// runtime, the sum of every worker's created and executed lifetime
// counters. While a region is active and the signature does not change for
// `timeout_ms`, the watchdog fires: one callback per stall episode, after
// which the window restarts. The default runtime handler dumps the
// snapshot to stderr and aborts with a clear error; tests install their
// own handler to observe the firing and un-wedge the worker.
//
// The monitor samples a handful of atomics a few dozen times per second —
// it shares no locks with the hot path and costs nothing when disabled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace xtask {

class Watchdog {
 public:
  struct Hooks {
    /// Stall window in milliseconds; must be > 0 to start.
    std::uint64_t timeout_ms = 0;
    /// Monotone progress signature (sampled, compared across the window).
    std::function<std::uint64_t()> progress;
    /// Only monitor while this returns true (e.g. a region is running).
    std::function<bool()> active;
    /// Invoked once per detected stall episode, from the monitor thread.
    std::function<void()> on_stall;
  };

  Watchdog() = default;
  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Launch the monitor thread. No-op when hooks.timeout_ms == 0.
  void start(Hooks hooks);

  /// Stop and join the monitor thread. Idempotent.
  void stop();

  bool running() const noexcept { return thread_.joinable(); }

  /// Stall episodes detected since start().
  std::uint64_t stalls() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Hooks hooks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<std::uint64_t> stalls_{0};
  std::thread thread_;
};

}  // namespace xtask
