// Fault-tolerance primitives for the xtask runtime: the first-exception-wins
// exception cell used by tasks, taskgroups, and parallel regions, plus the
// deterministic chaos-injection machinery the robustness test suite drives.
//
// Exception model (see DESIGN.md "Failure model"): a task body that throws
// has its std::exception_ptr captured into the task's own ExceptionSlot.
// When the task completes, the pending exception escalates to the nearest
// enclosing consumer — the parent task (rethrown at the parent's next
// taskwait), the innermost taskgroup (rethrown when taskgroup() returns,
// cancelling the rest of the group), or the region slot (rethrown from
// Runtime::run(), cancelling the rest of the region). Only the first
// exception to reach a slot survives; later ones are dropped, matching the
// "first exception wins" rule of every mainstream task runtime.
//
// Fault injection: a seeded FaultInjector can be installed process-wide
// (FaultScope). The lock-less data structures carry hook points —
// BQueue::push/pop, the steal-protocol request/round cells, the tree
// barrier's census publication — that consult the injector to force the
// rare paths (queue full, lost request, delayed response, spurious miss)
// and to insert random yields at linearization points. When no injector is
// installed the hooks cost one relaxed load of a global plus an untaken
// branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>

#include "core/common.hpp"

namespace xtask {

/// A write-once (until taken) exception cell. Many threads may race to
/// store; exactly one wins and the rest are discarded. `take()` is only
/// called at synchronization boundaries where all potential writers have
/// completed (taskwait drain, taskgroup drain, region barrier), so the
/// reader never waits on a writer for more than the few instructions
/// between the claim and the publish.
class ExceptionSlot {
 public:
  /// Attempt to store `ep`; returns false when another exception already
  /// claimed the slot (first-exception-wins).
  bool try_store(std::exception_ptr ep) noexcept {
    std::uint32_t expected = kEmpty;
    if (!state_.compare_exchange_strong(expected, kClaimed,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
      return false;
    ep_ = std::move(ep);
    state_.store(kSet, std::memory_order_release);
    return true;
  }

  /// True when an exception is stored or mid-store.
  bool pending() const noexcept {
    return state_.load(std::memory_order_acquire) != kEmpty;
  }

  /// Remove and return the stored exception (nullptr when empty). Spins
  /// past an in-flight writer; see class comment for why that is bounded.
  std::exception_ptr take() noexcept {
    if (state_.load(std::memory_order_acquire) == kEmpty) return nullptr;
    while (state_.load(std::memory_order_acquire) != kSet) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
    std::exception_ptr out = std::move(ep_);
    ep_ = nullptr;
    state_.store(kEmpty, std::memory_order_release);
    return out;
  }

  /// Reset to empty, dropping any stored exception. Single-threaded use
  /// only (descriptor recycling, region start).
  void reset() noexcept {
    ep_ = nullptr;
    state_.store(kEmpty, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kSet = 2;

  std::atomic<std::uint32_t> state_{kEmpty};
  std::exception_ptr ep_ = nullptr;
};

/// Hook points the chaos harness can perturb. Every point is chosen so
/// that an injected fault exercises a recovery path that must already be
/// correct: a forced queue-full takes the inline-execution path, a forced
/// pop miss retries on a later poll, a dropped steal request is recovered
/// by the thief's timeout, and census yields stretch the windows the
/// double-pass quiescence rule exists to close.
enum class FaultPoint : int {
  kQueuePush = 0,   // BQueue::push reports full (task runs inline)
  kQueuePop,        // BQueue::pop reports empty (consumer retries later)
  kStealRequest,    // StealCells::try_request: request lost in flight
  kStealComplete,   // StealCells::complete_round: response delayed
  kCensusPublish,   // TreeBarrier census report/release about to publish
  kIdleWakeup,      // runtime idle poll: spurious wakeup / extra yield
  kWorkerStall,     // worker goes heartbeat-silent (wedged task / desched)
  kWorkerSlow,      // worker goes silent just long enough to turn suspect
  kAdmissionStall,  // serve admission/drain wedged (service sheds, no block)
  kTransportTorn,   // ipc submit slot treated as torn (skipped, counted)
  kClientVanish,    // ipc session treated as crashed regardless of lease
  kCount_,
};
inline constexpr int kFaultPoints = static_cast<int>(FaultPoint::kCount_);

/// Seeded fault injector. Decisions are drawn from per-thread xorshift
/// streams derived from the base seed and a per-thread enrollment ordinal,
/// so a given seed replays the same decision sequence on every thread as
/// long as threads reach the injector in the same order — reproducible in
/// practice for the fixed-team runtimes that use it. Statistics are
/// tallied per point so tests can assert that faults actually fired.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) noexcept : seed_(seed) {
    epoch_ = next_epoch().fetch_add(1, std::memory_order_relaxed) + 1;
    for (auto& r : fail_rate_) r.store(0, std::memory_order_relaxed);
    for (auto& r : yield_rate_) r.store(0, std::memory_order_relaxed);
    for (auto& c : failed_) c.store(0, std::memory_order_relaxed);
    for (auto& c : perturbed_) c.store(0, std::memory_order_relaxed);
    for (auto& c : evaluated_) c.store(0, std::memory_order_relaxed);
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Probability in [0,1] that `inject(p)` reports a fault.
  void set_fail_rate(FaultPoint p, double prob) noexcept {
    fail_rate_[idx(p)].store(to_threshold(prob), std::memory_order_relaxed);
  }
  /// Probability in [0,1] that `perturb(p)` yields/delays the caller.
  void set_yield_rate(FaultPoint p, double prob) noexcept {
    yield_rate_[idx(p)].store(to_threshold(prob), std::memory_order_relaxed);
  }

  /// Should the operation at `p` fail this time?
  bool inject(FaultPoint p) noexcept {
    evaluated_[idx(p)].fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t thr = fail_rate_[idx(p)].load(std::memory_order_relaxed);
    if (thr == 0 || draw() >= thr) return false;
    failed_[idx(p)].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Maybe stall the caller at a linearization point: a scheduler yield or
  /// a short random pause burst, widening race windows deterministically.
  void perturb(FaultPoint p) noexcept {
    const std::uint32_t thr =
        yield_rate_[idx(p)].load(std::memory_order_relaxed);
    if (thr == 0 || draw() >= thr) return;
    perturbed_[idx(p)].fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t spin = draw() & 0x3ffu;
    if (spin < 128) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < spin; ++i) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }

  /// Forced failures reported by `inject(p)`.
  std::uint64_t failed(FaultPoint p) const noexcept {
    return failed_[idx(p)].load(std::memory_order_relaxed);
  }
  /// Yield/delay perturbations applied by `perturb(p)`.
  std::uint64_t perturbed(FaultPoint p) const noexcept {
    return perturbed_[idx(p)].load(std::memory_order_relaxed);
  }
  std::uint64_t evaluated(FaultPoint p) const noexcept {
    return evaluated_[idx(p)].load(std::memory_order_relaxed);
  }
  /// Every event the harness caused, of either kind, across all points.
  std::uint64_t total_injected() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : failed_) n += c.load(std::memory_order_relaxed);
    for (const auto& c : perturbed_) n += c.load(std::memory_order_relaxed);
    return n;
  }

 private:
  static std::size_t idx(FaultPoint p) noexcept {
    return static_cast<std::size_t>(p);
  }
  static std::uint32_t to_threshold(double prob) noexcept {
    if (prob <= 0.0) return 0;
    if (prob >= 1.0) return 0xffffffffu;
    return static_cast<std::uint32_t>(prob * 4294967296.0);
  }

  static std::atomic<std::uint64_t>& next_epoch() noexcept {
    static std::atomic<std::uint64_t> e{0};
    return e;
  }

  std::uint32_t draw() noexcept {
    thread_local struct Stream {
      std::uint64_t epoch = 0;
      XorShift rng{0};
    } tls;
    if (tls.epoch != epoch_) {
      const std::uint64_t ordinal =
          thread_ordinal_.fetch_add(1, std::memory_order_relaxed);
      tls.rng = XorShift(seed_ ^ (ordinal * 0x9e3779b97f4a7c15ull + 1));
      tls.epoch = epoch_;
    }
    return static_cast<std::uint32_t>(tls.rng.next() >> 32);
  }

  const std::uint64_t seed_;
  std::uint64_t epoch_ = 0;  // distinguishes injector instances in TLS
  std::atomic<std::uint64_t> thread_ordinal_{0};
  std::array<std::atomic<std::uint32_t>, kFaultPoints> fail_rate_;
  std::array<std::atomic<std::uint32_t>, kFaultPoints> yield_rate_;
  std::array<std::atomic<std::uint64_t>, kFaultPoints> failed_;
  std::array<std::atomic<std::uint64_t>, kFaultPoints> perturbed_;
  std::array<std::atomic<std::uint64_t>, kFaultPoints> evaluated_;
};

namespace detail {
inline std::atomic<FaultInjector*> g_fault_injector{nullptr};
}  // namespace detail

/// The currently installed injector, or nullptr (the fast path).
inline FaultInjector* fault_injector() noexcept {
  return detail::g_fault_injector.load(std::memory_order_acquire);
}

/// RAII installation of a process-wide injector. Install before
/// constructing the runtime under test and keep alive until it is
/// destroyed. Scopes restore the previously installed injector on
/// destruction, so they nest LIFO (an inner scope shadows the outer one
/// for its lifetime); construct/destroy them on one thread.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& fi) noexcept
      : prev_(detail::g_fault_injector.exchange(&fi,
                                                std::memory_order_acq_rel)) {}
  ~FaultScope() {
    detail::g_fault_injector.store(prev_, std::memory_order_release);
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* const prev_;
};

}  // namespace xtask
