// Distributed hybrid tree barrier (paper §III-B).
//
// Workers are connected in a binary tree. Termination of the parallel
// region is detected with a census protocol that uses **only single-writer
// memory cells** — plain release stores and acquire loads, zero
// read-modify-write atomics:
//
//  * gather (up the tree): the root repeatedly runs census passes. Each
//    node, when idle at the barrier, adopts the current pass epoch from its
//    parent, waits for its children's reports for that epoch, and then
//    publishes (subtree tasks created, subtree tasks executed) to its own
//    report cell, which only its parent reads.
//  * release (down the tree): when the root observes two consecutive
//    passes with identical totals and created == executed, the region is
//    quiescent; it bumps its release generation and every node relays the
//    store downward (the paper's "lock-less releasing" broadcast).
//
// The double-pass rule is what makes this barrier correct in the presence
// of dynamic load balancing: a single bottom-up AND-reduction of "I am
// idle" flags (the design LLVM briefly shipped and reverted, §III-B) can
// release while a migrated task is still in flight, because a worker
// counted idle early in the sweep may receive work from a worker counted
// later. With monotone per-worker created/executed counters, two
// consecutive passes with identical totals prove no activity occurred
// between each worker's two reports, so at the pass boundary the system
// held zero in-flight tasks — and with no tasks, none can reappear.
//
// Per-pass cost: one release store per tree edge upward and one per edge
// downward on release — at most half the coherence traffic of a shared
// atomic counter hit once per task, and none of it contended.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/common.hpp"

namespace xtask {

class TreeBarrier {
 public:
  explicit TreeBarrier(int num_workers);

  /// Called by worker `tid` whenever it is idle at the end-of-region
  /// barrier. `created`/`executed` are the worker's monotone lifetime task
  /// counters; `gen` is the barrier generation (count of parallel regions,
  /// starting at 1). Returns true once the barrier of generation `gen` has
  /// been released. Non-blocking: performs at most a few cell operations
  /// per call, so the caller can interleave it with queue polling.
  bool poll(int tid, std::uint64_t created, std::uint64_t executed,
            std::uint64_t gen) noexcept;

  int num_workers() const noexcept { return n_; }

  /// Census passes completed since construction (diagnostics).
  std::uint64_t passes() const noexcept {
    return nodes_[0].report_epoch.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLine) Node {
    // --- written by this node, read by its children ---
    atomic<std::uint64_t> epoch{0};    // census pass being gathered
    atomic<std::uint64_t> release{0};  // completed barrier generations
    // --- written by this node, read by its parent ---
    // Publication order: sums first (relaxed), then report_epoch
    // (release). The parent reads report_epoch (acquire) and only then the
    // sums; the node never rewrites sums for a new epoch until the parent
    // has consumed the old one (the parent consumes all child reports for
    // epoch e before anyone advances to e+1).
    atomic<std::uint64_t> report_epoch{0};
    atomic<std::uint64_t> sum_created{0};
    atomic<std::uint64_t> sum_executed{0};
  };

  bool children_reported(int tid, std::uint64_t epoch,
                         std::uint64_t* created_out,
                         std::uint64_t* executed_out) noexcept;

  const int n_;
  std::vector<Node> nodes_;
  // Root-only census history; the root is the single thread touching it.
  struct RootState {
    std::uint64_t prev_created = ~0ull;
    std::uint64_t prev_executed = ~0ull;
    bool have_prev = false;
  } root_;
};

}  // namespace xtask
