#include "core/task_graph.hpp"

#include <algorithm>

namespace xtask {

void TaskGraph::record_deps(std::uint32_t id, const Dep* deps,
                            std::size_t count) {
  if (!build_) build_ = std::make_unique<BuildState>();
  for (std::size_t i = 0; i < count; ++i) {
    const Dep& d = deps[i];
    build_->frontier.access(
        id, d.addr, d.mode,
        /*edge=*/
        [&](std::uint32_t pred) { build_->edges.emplace_back(pred, id); },
        /*retain=*/[](std::uint32_t) {}, /*drop=*/[](std::uint32_t) {});
  }
}

void TaskGraph::seal() {
  XTASK_CHECK(!sealed_);
  const std::uint32_t n = num_nodes();
  if (build_) {
    // Capture order is a topological order (frontier edges always point
    // from an earlier node to a later one), so one id-ordered pass over
    // the edge list computes both the CSR layout and the critical path.
    num_edges_ = static_cast<std::uint32_t>(build_->edges.size());
    std::sort(build_->edges.begin(), build_->edges.end());
    for (const auto& [pred, succ] : build_->edges) {
      XTASK_CHECK(pred < succ);
      nodes_[succ].init_preds++;
      nodes_[pred].succ_count++;
    }
    succs_.resize(num_edges_);
    std::uint32_t offset = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes_[i].succ_begin = offset;
      offset += nodes_[i].succ_count;
      nodes_[i].succ_count = 0;  // reused as a fill cursor below
    }
    for (const auto& [pred, succ] : build_->edges)
      succs_[nodes_[pred].succ_begin + nodes_[pred].succ_count++] = succ;
    // Longest chain, unit weights: depth[succ] = max(depth[pred]) + 1.
    std::vector<std::uint32_t> depth(n, 1);
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t e = 0; e < nodes_[i].succ_count; ++e) {
        const std::uint32_t s = succs_[nodes_[i].succ_begin + e];
        depth[s] = std::max(depth[s], depth[i] + 1);
      }
    for (std::uint32_t i = 0; i < n; ++i)
      critical_path_ = std::max(critical_path_, depth[i]);
    build_.reset();
  } else {
    critical_path_ = n > 0 ? 1 : 0;
  }
  roots_.clear();
  for (std::uint32_t i = 0; i < n; ++i)
    if (nodes_[i].init_preds == 0) roots_.push_back(i);
  XTASK_CHECK(n == 0 || !roots_.empty());  // a DAG always has a source
  sealed_ = true;
}

TaskGraph::Instance::Instance(const TaskGraph& g) : g_(&g) {
  XTASK_CHECK(g.sealed());
  pending_ = std::make_unique<xtask::atomic<std::uint32_t>[]>(g.num_nodes());
  reset();
  // A fresh instance reports idle() until replay_async claims it.
  remaining_.store(0, std::memory_order_relaxed);
}

void TaskGraph::Instance::reset() noexcept {
  const std::uint32_t n = g_->num_nodes();
  for (std::uint32_t i = 0; i < n; ++i)
    pending_[i].store(g_->nodes_[i].init_preds, std::memory_order_relaxed);
  remaining_.store(n, std::memory_order_relaxed);
  done_fn_ = nullptr;
  done_arg_ = nullptr;
}

void TaskGraph::NodeTask::operator()(TaskContext& ctx) const {
  const TaskGraph& g = inst->graph();
  const Node& nd = g.nodes_[id];
  nd.run(&nd, ctx);
  Counters& c =
      ctx.runtime().profiler().thread(ctx.worker_id()).counters;
  c.ngraph_nodes_run++;
  c.ngraph_edges_released += nd.succ_count;
  // Release the static successor slice: the last predecessor to finish
  // spawns the successor into the normal dispatch path. remaining_ counts
  // node *executions*, so it cannot drain while any successor is still
  // unspawned — the done hook fires on the worker running the last body.
  for (std::uint32_t e = 0; e < nd.succ_count; ++e) {
    const std::uint32_t s = g.succs_[nd.succ_begin + e];
    if (inst->pending_[s].fetch_sub(1, std::memory_order_acq_rel) == 1)
      ctx.spawn(NodeTask{inst, s});
  }
  if (inst->remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (inst->done_fn_ != nullptr) inst->done_fn_(inst->done_arg_);
  }
}

void TaskGraph::replay_async(TaskContext& ctx, Instance* inst) const {
  XTASK_CHECK(sealed_);
  XTASK_CHECK(inst->g_ == this);
  if (num_nodes() == 0) {
    if (inst->done_fn_ != nullptr) inst->done_fn_(inst->done_arg_);
    return;
  }
  ctx.runtime().profiler().thread(ctx.worker_id()).counters.ngraph_replays++;
  // Roots go out through spawn_batch: remote-first round-robin over the
  // team, so a wide root set lands spread across zones before the first
  // edge fires (the topology-aware initial placement).
  constexpr std::size_t kChunk = 64;
  NodeTask batch[kChunk];
  const std::size_t nroots = roots_.size();
  for (std::size_t i = 0; i < nroots; i += kChunk) {
    const std::size_t k = std::min(kChunk, nroots - i);
    for (std::size_t j = 0; j < k; ++j)
      batch[j] = NodeTask{inst, roots_[i + j]};
    ctx.spawn_batch(batch, k);
  }
}

void TaskGraph::replay(Runtime& rt, int times) const {
  if (times <= 0) return;
  Instance inst(*this);
  // One parallel region for ALL replays: a region wake/join costs ~1ms of
  // team barriers, which would swamp the per-replay cost this path exists
  // to minimize (counter reset + node execution). Each replay is bounded
  // by a taskgroup instead — its drain guarantees every node task (and
  // its transitive spawns) completed, so the instance is idle for the
  // next reset.
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < times; ++i) {
      inst.reset();
      ctx.taskgroup([&](TaskContext& c) { replay_async(c, &inst); });
    }
  });
}

}  // namespace xtask
