// parallel_for: OpenMP-taskloop-style helper on top of the task API —
// recursive range splitting down to a grain, one task per leaf. This is
// the loop-to-tasks translation the paper's introduction describes
// ("higher-level parallel constructs such as loops are translated into
// fine-granularity tasks"), packaged as a library utility.
#pragma once

#include <cstddef>
#include <utility>

namespace xtask {

namespace detail {

template <typename Ctx, typename F>
void parallel_for_rec(Ctx& ctx, std::size_t begin, std::size_t end,
                      std::size_t grain, const F& body) {
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  ctx.spawn([begin, mid, grain, &body](Ctx& c) {
    parallel_for_rec(c, begin, mid, grain, body);
  });
  ctx.spawn([mid, end, grain, &body](Ctx& c) {
    parallel_for_rec(c, mid, end, grain, body);
  });
  ctx.taskwait();
}

}  // namespace detail

/// Run body(lo, hi) over disjoint chunks of [begin, end), each at most
/// `grain` long, as parallel tasks. Blocks (at task level) until the whole
/// range is processed. `body` must be safe to invoke concurrently on
/// disjoint chunks; it is shared by reference, so it must outlive the
/// call (it does: we taskwait).
///
/// Works with any context type (xtask, GOMP-like, LOMP-like, simulator,
/// SerialContext).
template <typename Ctx, typename F>
  requires requires(Ctx& c) { c.taskwait(); }  // a task context
void parallel_for(Ctx& ctx, std::size_t begin, std::size_t end,
                  std::size_t grain, F&& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const F& body_ref = body;
  detail::parallel_for_rec(ctx, begin, end, grain, body_ref);
}

/// Whole-region convenience: open a parallel region on `rt` just for this
/// loop. Distinguished from the context overload by the absence of
/// taskwait() (runtimes have run(), contexts have taskwait()).
template <typename RuntimeT, typename F>
  requires(!requires(RuntimeT& r) { r.taskwait(); })
void parallel_for(RuntimeT& rt, std::size_t begin, std::size_t end,
                  std::size_t grain, F&& body) {
  rt.run([&](auto& ctx) {
    parallel_for(ctx, begin, end, grain, body);
  });
}

}  // namespace xtask
