// XQueue: the lock-less, relaxed-order MPMC task queue from §II-B / §III-A,
// assembled from an N×N matrix of SPSC B-Queues.
//
// Worker `w` *consumes* row `w`: its master queue `q[w][w]` plus one
// auxiliary queue `q[w][p]` for every other worker `p`. Worker `w`
// *produces* into column `w`: `q[t][w]` for any target `t`. Every queue in
// the matrix therefore has exactly one producer and one consumer, so the
// whole structure needs no locks and no RMW atomics, only the B-Queue's
// release/acquire slot protocol.
//
// The same single-producer/single-consumer discipline is what makes the
// paper's DLB strategies legal without extra synchronization:
//  * static push:      producer w  -> q[target][w]
//  * NA-RP redirect:   producer w  -> q[thief][w]   (w is the victim)
//  * NA-WS migration:  consumer w pops its own row, then produces the
//                      stolen tasks into q[thief][w]
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bqueue.hpp"
#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

template <typename TaskPtr>
class XQueueT {
 public:
  /// `num_workers` rows/columns; each SPSC queue holds `queue_capacity`
  /// task pointers (power of two).
  XQueueT(int num_workers, std::uint32_t queue_capacity = 2048)
      : n_(num_workers) {
    XTASK_CHECK(num_workers >= 1);
    queues_.reserve(static_cast<std::size_t>(n_) * n_);
    for (int i = 0; i < n_ * n_; ++i)
      queues_.push_back(std::make_unique<BQueue<TaskPtr>>(queue_capacity));
  }

  int num_workers() const noexcept { return n_; }

  /// Push `t` into `target`'s queue set. Must be called from worker
  /// `producer`'s thread. Returns false when that SPSC queue is full; the
  /// caller then executes the task immediately.
  bool push(int producer, int target, TaskPtr t) noexcept {
    return q(target, producer).push(t);
  }

  /// Pop the next task for worker `self`: master queue first, then the
  /// auxiliary queues starting from a rotating offset so no producer
  /// starves. Must be called from worker `self`'s thread.
  TaskPtr pop(int self) noexcept {
    if (TaskPtr t = q(self, self).pop()) return t;
    if (n_ == 1) return nullptr;
    // Scan i over n positions (not n-1): the window starts after `rot`,
    // and `self` is skipped inside it, so every other producer is visited
    // exactly once regardless of where the cursor points.
    std::uint32_t& rot = aux_rot_[static_cast<std::size_t>(self)].value;
    for (int i = 1; i <= n_; ++i) {
      const int p = static_cast<int>((rot + static_cast<std::uint32_t>(i)) %
                                     static_cast<std::uint32_t>(n_));
      if (p == self) continue;
      if (TaskPtr t = q(self, p).pop()) {
        rot = static_cast<std::uint32_t>(p);
        return t;
      }
    }
    return nullptr;
  }

  /// True when worker `self`'s master queue has no visible entry; cheap
  /// hint used by the DLB victim logic.
  bool master_empty(int self) const noexcept {
    return const_cast<XQueueT*>(this)->q(self, self).empty();
  }

  /// True when every queue consumed by `self` appears empty. Transiently
  /// racy (a push may land right after), which the termination logic
  /// tolerates via its two-pass quiescence scan.
  bool all_empty(int self) const noexcept {
    for (int p = 0; p < n_; ++p)
      if (!const_cast<XQueueT*>(this)->q(self, p).empty()) return false;
    return true;
  }

  /// Approximate entries visible to consumer `self` across its row.
  /// Diagnostics (watchdog snapshots) and tests only.
  std::uint64_t consumer_occupancy(int self) const noexcept {
    std::uint64_t total = 0;
    for (int p = 0; p < n_; ++p)
      total += const_cast<XQueueT*>(this)->q(self, p).size_approx();
    return total;
  }

  /// Total visible entries across the whole matrix. Debug/tests only.
  std::uint64_t size_approx() const noexcept {
    std::uint64_t total = 0;
    for (const auto& uq : queues_) total += uq->size_approx();
    return total;
  }

 private:
  BQueue<TaskPtr>& q(int consumer, int producer) noexcept {
    return *queues_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }

  struct alignas(kCacheLine) PaddedU32 {
    std::uint32_t value = 0;
  };

  const int n_;
  std::vector<std::unique_ptr<BQueue<TaskPtr>>> queues_;
  // Per-consumer rotation cursor for auxiliary scanning; indexed by self.
  std::vector<PaddedU32> aux_rot_ = std::vector<PaddedU32>(
      static_cast<std::size_t>(n_));
};

/// The runtime's XQueue instance: SPSC matrix of xtask::Task pointers.
using XQueue = XQueueT<Task*>;

}  // namespace xtask
