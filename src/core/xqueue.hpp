// XQueue: the lock-less, relaxed-order MPMC task queue from §II-B / §III-A,
// assembled from an N×N matrix of SPSC B-Queues.
//
// Worker `w` *consumes* row `w`: its master queue `q[w][w]` plus one
// auxiliary queue `q[w][p]` for every other worker `p`. Worker `w`
// *produces* into column `w`: `q[t][w]` for any target `t`. Every queue in
// the matrix therefore has exactly one producer and one consumer, so the
// whole structure needs no locks; the only RMW atomics are the occupancy
// bitmap's publish/retire pair below.
//
// The same single-producer/single-consumer discipline is what makes the
// paper's DLB strategies legal without extra synchronization:
//  * static push:      producer w  -> q[target][w]
//  * NA-RP redirect:   producer w  -> q[thief][w]   (w is the victim)
//  * NA-WS migration:  consumer w pops its own row, then produces the
//                      stolen tasks into q[thief][w]
//
// Occupancy bitmap: scanning all N−1 auxiliary queues on every pop miss is
// O(N) of cold cache lines at scale. Each consumer row keeps a packed
// bitmap, one bit per producer (one 64-bit load covers 64 rows instead of
// 64 byte probes), scanned with countr_zero. Unlike the hint *bytes* this
// replaced, the bitmap is reliable, not heuristic:
//
//  * publish: after pushing into an aux queue the producer does an
//    UNCONDITIONAL fetch_or of its bit (release). A check-then-set
//    shortcut is provably broken: a stale "already set" read can race
//    with the consumer's retire and permanently hide a task.
//  * retire: the consumer clears an apparently-drained queue's bit with
//    fetch_and (acq_rel), then RE-VERIFIES via the queue's occupancy
//    counters (empty()), not another pop — a pop may miss spuriously on
//    a non-empty queue. The two RMWs on the same word totally order
//    against each other: if the consumer's clear ordered after the
//    producer's set, the acquire side of the fetch_and makes the push's
//    counter visible and the bit is re-armed; if it ordered before, the
//    word ends with the bit set. Either way:
//
//      INVARIANT: bitmap word == 0 (acquire)  =>  every covered aux queue
//      is empty, or a producer's fetch_or is already in flight (and will
//      land — a transient, never a lost task).
//
// That invariant is what lets the periodic hint-ignoring full scan skip a
// zero word outright, and what lets the adaptive dispatch layer run its
// per-epoch occupancy census on popcounts alone. Termination still never
// depends on the bitmap (the runtime's census does that); the
// `kFullScanPeriod` sweep is retained as defense in depth and now probes
// only words that are non-zero.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/bqueue.hpp"
#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

template <typename TaskPtr>
class XQueueT {
 public:
  /// Pop misses between bitmap-ignoring full rotation scans.
  static constexpr std::uint32_t kFullScanPeriod = 64;

  /// Per-consumer scan statistics (owner-private counters, exported into
  /// the profiler at region end).
  struct ScanStats {
    std::uint64_t full_scans = 0;  // kFullScanPeriod sweeps triggered
    std::uint64_t zero_skips = 0;  // words skipped in sweeps because == 0
  };

  /// Cheap whole-matrix occupancy census: how many queues are visibly
  /// non-empty and roughly how many tasks they hold. Bitmap popcounts plus
  /// one counter probe per master queue — O(N), not O(N²).
  struct Census {
    int occupied_queues = 0;   // masters + aux queues with visible entries
    std::uint64_t queued = 0;  // approximate total tasks across them
  };

  /// `num_workers` rows/columns; each SPSC queue holds `queue_capacity`
  /// task pointers (power of two).
  XQueueT(int num_workers, std::uint32_t queue_capacity = 2048)
      : n_(num_workers),
        words_((num_workers + 63) / 64),
        lines_per_row_((static_cast<std::size_t>(words_) + kWordsPerLine - 1) /
                       kWordsPerLine) {
    XTASK_CHECK(num_workers >= 1);
    queues_.reserve(static_cast<std::size_t>(n_) * n_);
    for (int i = 0; i < n_ * n_; ++i)
      queues_.push_back(std::make_unique<BQueue<TaskPtr>>(queue_capacity));
    // One cache line (or more) of bitmap words per consumer, so two
    // consumers' retire-RMWs never share a line.
    bitmap_ = std::make_unique<BitmapLine[]>(
        lines_per_row_ * static_cast<std::size_t>(n_));
    state_ = std::vector<PerConsumer>(static_cast<std::size_t>(n_));
  }

  int num_workers() const noexcept { return n_; }

  /// Push `t` into `target`'s queue set. Must be called from worker
  /// `producer`'s thread. Returns false when that SPSC queue is full; the
  /// caller then executes the task immediately.
  bool push(int producer, int target, TaskPtr t) noexcept {
    if (!q(target, producer).push(t)) return false;
    if (producer != target) note_push(target, producer);
    return true;
  }

  /// Push up to `n` tasks into `target`'s queue set in one shot (NA-WS
  /// migration, allocator-style bulk moves). Must be called from worker
  /// `producer`'s thread. Returns how many were enqueued (a prefix).
  std::size_t push_batch(int producer, int target, TaskPtr const* items,
                         std::size_t n) noexcept {
    const std::size_t k = q(target, producer).push_batch(items, n);
    if (k > 0 && producer != target) note_push(target, producer);
    return k;
  }

  /// Pop the next task for worker `self`: master queue first, then the
  /// auxiliary queues whose bitmap bit is set, starting after the last
  /// successful producer so no producer starves. Must be called from the
  /// thread currently holding worker `self`'s consumer identity.
  TaskPtr pop(int self) noexcept {
    PerConsumer& pc = state_[static_cast<std::size_t>(self)];
    // Row base hoisted: one index computation for the whole scan.
    const std::unique_ptr<BQueue<TaskPtr>>* const row =
        queues_.data() + static_cast<std::size_t>(self) * n_;
    if (TaskPtr t = row[self]->pop()) {
      pc.miss_tick = 0;
      return t;
    }
    if (n_ == 1) return nullptr;
    // Defense in depth: periodically probe every queue under a non-zero
    // word, ignoring individual bits. With the reliable publish/retire
    // protocol this should never find anything a bit did not announce; a
    // zero word proves its queues empty and is skipped outright.
    const bool full_scan = pc.miss_tick >= kFullScanPeriod;
    if (full_scan) pc.stats.full_scans++;
    atomic<std::uint64_t>* const brow = bitmap_row(self);

    // Visit order: start just after the last successful producer
    // (rotation fairness), one word at a time; the starting word is
    // visited twice with complementary masks so the rotation point can
    // fall mid-word.
    int start = pc.rot + 1;
    if (start >= n_) start = 0;
    const int sw = start >> 6;
    const std::uint64_t shigh = ~0ull << (start & 63);

    for (int k = 0; k <= words_; ++k) {
      int wi = sw + k;
      if (wi >= words_) wi -= words_;
      std::uint64_t seg = ~0ull;
      if (k == 0)
        seg = shigh;
      else if (k == words_)
        seg = ~shigh;
      if (seg == 0) continue;

      const std::uint64_t m = brow[wi].load(std::memory_order_acquire);
      std::uint64_t cand = m & seg;
      if (full_scan) {
        if (m == 0) {
          // The invariant above makes this sound: a zero word means every
          // covered queue is empty (or a publish is in flight and will
          // re-arm it) — skip the probe loop entirely.
          pc.stats.zero_skips++;
          continue;
        }
        cand = valid_word_mask(self, wi) & seg;
      }
      while (cand != 0) {
        const int b = std::countr_zero(cand);
        cand &= cand - 1;
        const int p = (wi << 6) | b;
        if (TaskPtr t = row[p]->pop()) {
          // Leave the bit set: one pop rarely drains the queue, and the
          // next miss will retire it if it did.
          pc.rot = p;
          pc.miss_tick = 0;
          return t;
        }
        // Drained? Retire the bit, then verify with the occupancy
        // counters — NOT another pop: a pop can miss spuriously on a
        // non-empty queue (probe backtracking, chaos injection), and a
        // bit retired on a spurious miss would strand tasks behind the
        // zero-word skip. The fetch_and / fetch_or pair on this word is
        // what makes a concurrent push either visible to the counter
        // probe or re-announced by the producer's own fetch_or. On a
        // non-empty verdict the bit is re-armed *before* the retry pop,
        // so a second spurious miss leaves the queue announced.
        const std::uint64_t bit = 1ull << b;
        if ((m & bit) != 0) {
          brow[wi].fetch_and(~bit, std::memory_order_acq_rel);
          if (!row[p]->empty()) {
            brow[wi].fetch_or(bit, std::memory_order_release);
            if (TaskPtr t = row[p]->pop()) {
              pc.rot = p;
              pc.miss_tick = 0;
              return t;
            }
          }
        }
      }
    }
    pc.miss_tick = full_scan ? 0 : pc.miss_tick + 1;
    return nullptr;
  }

  /// Pop up to `max` tasks for worker `self` in one shot — the NA-WS
  /// victim's bulk grab. Drains the master queue with one counter probe,
  /// then tops up from the auxiliary queues. Must be called from the
  /// thread currently holding worker `self`'s consumer identity.
  std::size_t pop_batch(int self, TaskPtr* out, std::size_t max) noexcept {
    std::size_t got = q(self, self).pop_batch(out, max);
    while (got < max) {
      TaskPtr t = pop(self);
      if (t == nullptr) break;
      out[got++] = t;
    }
    return got;
  }

  /// True when worker `self`'s master queue has no visible entry; cheap
  /// hint used by the DLB victim logic. Safe from any thread.
  bool master_empty(int self) const noexcept {
    return q(self, self).empty();
  }

  /// True when every queue consumed by `self` appears empty. Transiently
  /// racy (a push may land right after), which the termination logic
  /// tolerates via its two-pass quiescence scan. Probes the queues
  /// directly (not the bitmap) so tests keep their strict reading. Safe
  /// from any thread.
  bool all_empty(int self) const noexcept {
    for (int p = 0; p < n_; ++p)
      if (!q(self, p).empty()) return false;
    return true;
  }

  /// Approximate depth of `self`'s master queue — input to the direct
  /// mode's work-first throttle. Safe from any thread.
  std::uint64_t master_size(int self) const noexcept {
    return q(self, self).size_approx();
  }

  /// Approximate entries visible to consumer `self` across its row:
  /// master counter plus the aux queues the bitmap marks occupied —
  /// O(occupied), not O(N). Safe from any thread.
  std::uint64_t consumer_occupancy(int self) const noexcept {
    std::uint64_t total = q(self, self).size_approx();
    const atomic<std::uint64_t>* const brow = bitmap_row(self);
    for (int wi = 0; wi < words_; ++wi) {
      std::uint64_t m = brow[wi].load(std::memory_order_acquire);
      while (m != 0) {
        const int p = (wi << 6) | std::countr_zero(m);
        m &= m - 1;
        total += q(self, p).size_approx();
      }
    }
    return total;
  }

  /// Total visible entries across the whole matrix: one bitmap-guided row
  /// sum per consumer (O(N + occupied), replacing the old O(N²) probe).
  std::uint64_t size_approx() const noexcept {
    std::uint64_t total = 0;
    for (int c = 0; c < n_; ++c) total += consumer_occupancy(c);
    return total;
  }

  /// Batched occupancy census over the whole matrix for the adaptive
  /// dispatch layer's per-epoch mode decision: bitmap popcounts plus one
  /// counter probe per master queue. Safe from any thread.
  Census census() const noexcept {
    Census out;
    for (int c = 0; c < n_; ++c) {
      const atomic<std::uint64_t>* const brow = bitmap_row(c);
      for (int wi = 0; wi < words_; ++wi) {
        std::uint64_t m = brow[wi].load(std::memory_order_acquire);
        out.occupied_queues += std::popcount(m);
        while (m != 0) {
          const int p = (wi << 6) | std::countr_zero(m);
          m &= m - 1;
          out.queued += q(c, p).size_approx();
        }
      }
      const std::uint64_t master = q(c, c).size_approx();
      if (master != 0) {
        out.occupied_queues++;
        out.queued += master;
      }
    }
    return out;
  }

  /// One raw bitmap word of consumer `row`'s occupancy map. Safe from any
  /// thread (acquire).
  std::uint64_t occupancy_word(int row, int word = 0) const noexcept {
    return bitmap_row(row)[word].load(std::memory_order_acquire);
  }

  /// True when consumer `row` has visible work anywhere in its row (any
  /// bitmap word non-zero, or a non-empty master queue). Safe from any
  /// thread.
  bool row_occupied(int row) const noexcept {
    for (int wi = 0; wi < words_; ++wi)
      if (bitmap_row(row)[wi].load(std::memory_order_acquire) != 0)
        return true;
    return !master_empty(row);
  }

  /// Packed per-worker occupancy mask for vectorized victim selection:
  /// bit v set iff row_occupied(v), covering the first 64 workers (teams
  /// beyond 64 fall back to random selection for the excess). Safe from
  /// any thread.
  std::uint64_t occupied_mask() const noexcept {
    const int lim = n_ < 64 ? n_ : 64;
    std::uint64_t mask = 0;
    for (int v = 0; v < lim; ++v)
      if (row_occupied(v)) mask |= 1ull << v;
    return mask;
  }

  /// The bitmap bit for (consumer, producer); tests and debug snapshots.
  bool hint_set(int consumer, int producer) const noexcept {
    return (occupancy_word(consumer, producer >> 6) &
            (1ull << (producer & 63))) != 0;
  }

  /// Consumer `self`'s scan statistics. Owner-private counters: read them
  /// from the thread holding that consumer identity (or quiesced).
  ScanStats scan_stats(int self) const noexcept {
    return state_[static_cast<std::size_t>(self)].stats;
  }

 private:
  static constexpr int kWordsPerLine =
      static_cast<int>(kCacheLine / sizeof(atomic<std::uint64_t>));

  /// One cache line of bitmap words, so rows never false-share.
  struct alignas(kCacheLine) BitmapLine {
    atomic<std::uint64_t> w[kWordsPerLine] = {};
  };

  BQueue<TaskPtr>& q(int consumer, int producer) noexcept {
    return *queues_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }
  const BQueue<TaskPtr>& q(int consumer, int producer) const noexcept {
    return *queues_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }

  atomic<std::uint64_t>* bitmap_row(int consumer) noexcept {
    return bitmap_[static_cast<std::size_t>(consumer) * lines_per_row_].w;
  }
  const atomic<std::uint64_t>* bitmap_row(int consumer) const noexcept {
    return bitmap_[static_cast<std::size_t>(consumer) * lines_per_row_].w;
  }

  /// Every producer bit word `wi` can legally carry for consumer `self`:
  /// ids below n_, minus the consumer itself (self-pushes go to the
  /// master queue and never arm a bit).
  std::uint64_t valid_word_mask(int self, int wi) const noexcept {
    const int base = wi << 6;
    const int cnt = n_ - base;
    std::uint64_t m = cnt >= 64 ? ~0ull : (1ull << cnt) - 1;
    if (self >= base && self < base + 64) m &= ~(1ull << (self - base));
    return m;
  }

  /// Producer-side publish. Unconditional RMW — see the protocol argument
  /// in the header comment; a check-then-set here loses tasks.
  void note_push(int consumer, int producer) noexcept {
    bitmap_row(consumer)[producer >> 6].fetch_or(
        1ull << (producer & 63), std::memory_order_release);
  }

  /// Per-consumer scan state: rotation cursor, the miss counter that
  /// schedules full scans, and scan statistics. Only touched by the
  /// thread holding that consumer identity.
  struct alignas(kCacheLine) PerConsumer {
    int rot = 0;
    std::uint32_t miss_tick = 0;
    ScanStats stats;
  };

  const int n_;
  const int words_;                   // bitmap words per consumer row
  const std::size_t lines_per_row_;   // cache lines per consumer row
  std::vector<std::unique_ptr<BQueue<TaskPtr>>> queues_;
  // bitmap_[consumer row]: bit p set means q(consumer, p) is non-empty
  // (reliable up to an in-flight publish; see header).
  std::unique_ptr<BitmapLine[]> bitmap_;
  std::vector<PerConsumer> state_;
};

/// The runtime's XQueue instance: SPSC matrix of xtask::Task pointers.
using XQueue = XQueueT<Task*>;

}  // namespace xtask
