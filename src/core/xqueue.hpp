// XQueue: the lock-less, relaxed-order MPMC task queue from §II-B / §III-A,
// assembled from an N×N matrix of SPSC B-Queues.
//
// Worker `w` *consumes* row `w`: its master queue `q[w][w]` plus one
// auxiliary queue `q[w][p]` for every other worker `p`. Worker `w`
// *produces* into column `w`: `q[t][w]` for any target `t`. Every queue in
// the matrix therefore has exactly one producer and one consumer, so the
// whole structure needs no locks and no RMW atomics, only the B-Queue's
// release/acquire slot protocol.
//
// The same single-producer/single-consumer discipline is what makes the
// paper's DLB strategies legal without extra synchronization:
//  * static push:      producer w  -> q[target][w]
//  * NA-RP redirect:   producer w  -> q[thief][w]   (w is the victim)
//  * NA-WS migration:  consumer w pops its own row, then produces the
//                      stolen tasks into q[thief][w]
//
// Occupancy hints: scanning all N−1 auxiliary queues on every pop miss is
// O(N) of cold cache lines at scale. Each consumer row therefore keeps a
// byte-per-producer hint array: a producer sets its byte after pushing, the
// consumer clears it after draining that queue, and `pop` only visits
// flagged queues. Each byte has exactly two writers (that producer sets,
// that consumer clears) and the flags are heuristic — a cleared flag can
// race with a concurrent set and lose — so every `kFullScanPeriod`
// consecutive misses the consumer ignores the hints and scans everything.
// Termination never depends on the hints (the runtime's census does that);
// the periodic full scan only bounds how long a queued task can hide.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/bqueue.hpp"
#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

template <typename TaskPtr>
class XQueueT {
 public:
  /// Pop misses between hint-ignoring full rotation scans.
  static constexpr std::uint32_t kFullScanPeriod = 64;

  /// `num_workers` rows/columns; each SPSC queue holds `queue_capacity`
  /// task pointers (power of two).
  XQueueT(int num_workers, std::uint32_t queue_capacity = 2048)
      : n_(num_workers),
        // Hint rows padded to cache-line multiples so two consumers'
        // clear-stores never share a line.
        hint_stride_((static_cast<std::size_t>(num_workers) + kCacheLine - 1) /
                     kCacheLine * kCacheLine) {
    XTASK_CHECK(num_workers >= 1);
    queues_.reserve(static_cast<std::size_t>(n_) * n_);
    for (int i = 0; i < n_ * n_; ++i)
      queues_.push_back(std::make_unique<BQueue<TaskPtr>>(queue_capacity));
    hints_ = std::make_unique<atomic<std::uint8_t>[]>(
        hint_stride_ * static_cast<std::size_t>(n_));
    for (std::size_t i = 0; i < hint_stride_ * static_cast<std::size_t>(n_);
         ++i)
      hints_[i].store(0, std::memory_order_relaxed);
    state_ = std::vector<PerConsumer>(static_cast<std::size_t>(n_));
  }

  int num_workers() const noexcept { return n_; }

  /// Push `t` into `target`'s queue set. Must be called from worker
  /// `producer`'s thread. Returns false when that SPSC queue is full; the
  /// caller then executes the task immediately.
  bool push(int producer, int target, TaskPtr t) noexcept {
    if (!q(target, producer).push(t)) return false;
    if (producer != target) note_push(target, producer);
    return true;
  }

  /// Push up to `n` tasks into `target`'s queue set in one shot (NA-WS
  /// migration, allocator-style bulk moves). Must be called from worker
  /// `producer`'s thread. Returns how many were enqueued (a prefix).
  std::size_t push_batch(int producer, int target, TaskPtr const* items,
                         std::size_t n) noexcept {
    const std::size_t k = q(target, producer).push_batch(items, n);
    if (k > 0 && producer != target) note_push(target, producer);
    return k;
  }

  /// Pop the next task for worker `self`: master queue first, then the
  /// auxiliary queues whose hint byte is set, starting from a rotating
  /// cursor so no producer starves. Must be called from worker `self`'s
  /// thread.
  TaskPtr pop(int self) noexcept {
    PerConsumer& pc = state_[static_cast<std::size_t>(self)];
    // Row base hoisted: one index computation for the whole scan.
    const std::unique_ptr<BQueue<TaskPtr>>* const row =
        queues_.data() + static_cast<std::size_t>(self) * n_;
    if (TaskPtr t = row[self]->pop()) {
      pc.miss_tick = 0;
      return t;
    }
    if (n_ == 1) return nullptr;
    // Periodically ignore the hints entirely: a consumer clear can race
    // with a producer set and lose, and this bounds how long that hidden
    // task waits.
    const bool full_scan = pc.miss_tick >= kFullScanPeriod;
    atomic<std::uint8_t>* const hrow =
        hints_.get() + static_cast<std::size_t>(self) * hint_stride_;
    // Increment-and-wrap rotation — no modulo in the scan loop.
    int p = static_cast<int>(pc.rot);
    for (int i = 0; i < n_; ++i) {
      if (++p >= n_) p = 0;
      if (p == self) continue;
      if (!full_scan && hrow[p].load(std::memory_order_relaxed) == 0)
        continue;
      if (TaskPtr t = row[p]->pop()) {
        // Leave the hint set: one pop rarely drains the queue, and the
        // next miss will clear it if it did.
        hrow[p].store(1, std::memory_order_relaxed);
        pc.rot = static_cast<std::uint32_t>(p);
        pc.miss_tick = 0;
        return t;
      }
      // Drained: clear the hint (skip the store when already clear so a
      // full scan over idle queues does not dirty producers' lines).
      if (hrow[p].load(std::memory_order_relaxed) != 0)
        hrow[p].store(0, std::memory_order_relaxed);
    }
    pc.miss_tick = full_scan ? 0 : pc.miss_tick + 1;
    return nullptr;
  }

  /// Pop up to `max` tasks for worker `self` in one shot — the NA-WS
  /// victim's bulk grab. Drains the master queue with one counter probe,
  /// then tops up from the auxiliary queues. Must be called from worker
  /// `self`'s thread.
  std::size_t pop_batch(int self, TaskPtr* out, std::size_t max) noexcept {
    std::size_t got = q(self, self).pop_batch(out, max);
    while (got < max) {
      TaskPtr t = pop(self);
      if (t == nullptr) break;
      out[got++] = t;
    }
    return got;
  }

  /// True when worker `self`'s master queue has no visible entry; cheap
  /// hint used by the DLB victim logic. Safe from any thread.
  bool master_empty(int self) const noexcept {
    return q(self, self).empty();
  }

  /// True when every queue consumed by `self` appears empty. Transiently
  /// racy (a push may land right after), which the termination logic
  /// tolerates via its two-pass quiescence scan. Safe from any thread.
  bool all_empty(int self) const noexcept {
    for (int p = 0; p < n_; ++p)
      if (!q(self, p).empty()) return false;
    return true;
  }

  /// Approximate entries visible to consumer `self` across its row.
  /// Diagnostics (watchdog snapshots) and tests only. Safe from any
  /// thread.
  std::uint64_t consumer_occupancy(int self) const noexcept {
    std::uint64_t total = 0;
    for (int p = 0; p < n_; ++p) total += q(self, p).size_approx();
    return total;
  }

  /// Total visible entries across the whole matrix. Debug/tests only.
  std::uint64_t size_approx() const noexcept {
    std::uint64_t total = 0;
    for (const auto& uq : queues_) total += uq->size_approx();
    return total;
  }

  /// The hint byte for (consumer, producer); tests and debug snapshots.
  bool hint_set(int consumer, int producer) const noexcept {
    return hints_[static_cast<std::size_t>(consumer) * hint_stride_ +
                  static_cast<std::size_t>(producer)]
               .load(std::memory_order_relaxed) != 0;
  }

 private:
  BQueue<TaskPtr>& q(int consumer, int producer) noexcept {
    return *queues_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }
  const BQueue<TaskPtr>& q(int consumer, int producer) const noexcept {
    return *queues_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }

  /// Producer-side hint arm. Check-then-set: skip the store (and the
  /// cache-line grab) when the byte is already set, which is the common
  /// case on a busy queue.
  void note_push(int consumer, int producer) noexcept {
    atomic<std::uint8_t>& h =
        hints_[static_cast<std::size_t>(consumer) * hint_stride_ +
               static_cast<std::size_t>(producer)];
    if (h.load(std::memory_order_relaxed) == 0)
      h.store(1, std::memory_order_relaxed);
  }

  /// Per-consumer scan state: rotation cursor plus the miss counter that
  /// schedules hint-ignoring full scans. Only touched by that consumer.
  struct alignas(kCacheLine) PerConsumer {
    std::uint32_t rot = 0;
    std::uint32_t miss_tick = 0;
  };

  const int n_;
  const std::size_t hint_stride_;
  std::vector<std::unique_ptr<BQueue<TaskPtr>>> queues_;
  // Byte flags: hints_[consumer * hint_stride_ + producer] != 0 means
  // q(consumer, producer) is plausibly non-empty.
  std::unique_ptr<atomic<std::uint8_t>[]> hints_;
  std::vector<PerConsumer> state_;
};

/// The runtime's XQueue instance: SPSC matrix of xtask::Task pointers.
using XQueue = XQueueT<Task*>;

}  // namespace xtask
