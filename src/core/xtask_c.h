/* C API facade for the xtask runtime — the ABI surface a compiler's
 * OpenMP lowering (or any C program) would target, mirroring how libgomp
 * exposes GOMP_task/GOMP_taskwait. Function-pointer based: no C++ types
 * cross the boundary.
 *
 * Usage:
 *   xtask_runtime_t* rt = xtask_create(8, XTASK_DLB_WORK_STEAL);
 *   xtask_run(rt, root_fn, arg);       // root_fn spawns via xtask_spawn
 *   xtask_destroy(rt);
 */
#ifndef XTASK_C_H_
#define XTASK_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct xtask_runtime_t xtask_runtime_t;
/* Opaque per-invocation context; valid only inside the callback. */
typedef struct xtask_context_t xtask_context_t;

typedef void (*xtask_fn_t)(xtask_context_t* ctx, void* arg);

typedef enum {
  XTASK_DLB_NONE = 0,          /* static round-robin (SLB) */
  XTASK_DLB_REDIRECT_PUSH = 1, /* NA-RP */
  XTASK_DLB_WORK_STEAL = 2,    /* NA-WS */
  XTASK_DLB_ADAPTIVE = 3,
} xtask_dlb_t;

/* Team lifecycle. num_threads <= 0 selects hardware concurrency. */
xtask_runtime_t* xtask_create(int num_threads, xtask_dlb_t dlb);
void xtask_destroy(xtask_runtime_t* rt);

/* Execute one parallel region (blocking; caller thread is worker 0). */
void xtask_run(xtask_runtime_t* rt, xtask_fn_t root, void* arg);

/* Inside a task: spawn a child / wait for children / yield once. */
void xtask_spawn(xtask_context_t* ctx, xtask_fn_t fn, void* arg);
void xtask_taskwait(xtask_context_t* ctx);
int xtask_taskyield(xtask_context_t* ctx);
int xtask_worker_id(const xtask_context_t* ctx);

/* Aggregate statistics (paper §V counters). */
typedef struct {
  uint64_t tasks_created;
  uint64_t tasks_executed;
  uint64_t tasks_self;
  uint64_t tasks_numa_local;
  uint64_t tasks_numa_remote;
  uint64_t steal_requests_sent;
  uint64_t steal_requests_handled;
  uint64_t tasks_stolen;
} xtask_stats_t;

void xtask_get_stats(const xtask_runtime_t* rt, xtask_stats_t* out);

#ifdef __cplusplus
}
#endif

#endif /* XTASK_C_H_ */
