// Lock-free successor ("release") list — the Nanos6-style replacement for
// the per-task micro spinlock that used to guard dependence successors.
//
// Shape of the race it resolves: one *registering* thread (the parent
// executing its body) wants to append "when pred completes, release succ"
// edges to a predecessor's list, while one *completing* worker wants to
// atomically close that list and walk it. The paper's thesis is that such
// two-party synchronization never needs a lock:
//
//   * registration CAS-pushes an intrusive node onto a Treiber-style head;
//   * completion swings the head to a sealed sentinel with one exchange,
//     taking the whole chain in the same instruction.
//
// The exchange is the linearization point of completion: every push that
// succeeded before it is in the returned chain, every push attempted after
// it observes the sentinel and fails — which tells the registering side
// "this predecessor is already done, no edge exists". There is no state in
// which a successfully pushed node is lost or a node is both refused and
// collected (the xcheck model test tests/model/model_deplist.cpp explores
// exactly this claim).
//
// The completer is wait-free (one exchange); the pusher is lock-free (its
// CAS only retries when another push or the seal made progress). Payloads
// are opaque `void*` so the list can be model-checked without dragging the
// Task definition into an instrumented TU.
#pragma once

#include "core/common.hpp"

namespace xtask::detail {

/// Intrusive chain node. The pusher owns it until push() returns: on
/// success ownership passes to whoever seals the list; on failure (list
/// already sealed) the pusher keeps it and typically frees it.
struct ReleaseNode {
  void* item = nullptr;
  ReleaseNode* next = nullptr;
};

class ReleaseList {
 public:
  /// Distinguished address marking a sealed list. Never dereferenced as a
  /// chain element; `next` of real nodes never points at it.
  static ReleaseNode* sealed_tag() noexcept {
    static ReleaseNode tag;
    return &tag;
  }

  /// Append `n`. Returns true when the node is now owned by the list;
  /// false when the list was already sealed (the completer has been and
  /// gone — the would-be edge is already satisfied).
  bool push(ReleaseNode* n) noexcept {
    ReleaseNode* h = head_.load(std::memory_order_acquire);
    for (;;) {
      if (h == sealed_tag()) return false;
      n->next = h;
      // Release so the sealer's acquire exchange observes n's fields;
      // acquire on failure so the re-read of a just-sealed head is not
      // reordered ahead of the retry check.
      if (head_.compare_exchange_weak(h, n, std::memory_order_release,
                                      std::memory_order_acquire))
        return true;
    }
  }

  /// Close the list forever and take every node pushed so far. Returns
  /// the chain head (nullptr for an empty list), or sealed_tag() if the
  /// list was already sealed — callers treat that as "nothing to do"
  /// (it cannot happen in the runtime, where exactly one worker completes
  /// a task, but the oracle in the model test wants it well-defined).
  ReleaseNode* seal() noexcept {
    return head_.exchange(sealed_tag(), std::memory_order_acq_rel);
  }

  /// True once seal() has run. Racy by nature; for diagnostics and tests.
  bool sealed() const noexcept {
    return head_.load(std::memory_order_acquire) == sealed_tag();
  }

 private:
  xtask::atomic<ReleaseNode*> head_{nullptr};
};

}  // namespace xtask::detail
