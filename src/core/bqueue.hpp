// B-Queue: a single-producer single-consumer lock-free ring buffer using
// slot-NULL synchronization and batched index probing (paper §II-B).
//
// The producer and consumer never share head/tail indices; each side keeps
// its indices private and infers the other side's progress by probing slot
// contents. Synchronization is one release store / acquire load per
// operation and **no read-modify-write atomics**, which is what the paper
// means by "lock-less": per-operation latency stays in the tens of cycles
// because the only coherence traffic is the slot cache line itself, and
// even that is amortized by probing a batch ahead.
//
// Each side additionally publishes a single-writer occupancy counter (the
// producer its push count, the consumer its pop count) with plain release
// stores. These make `empty()`/`size_approx()` two loads instead of an
// O(capacity) sweep, and let `push_batch`/`pop_batch` move a whole run of
// elements with one counter acquire instead of one probe per element.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "core/common.hpp"
#include "core/fault.hpp"

// Mutation hook for the model checker's smoke test (tests/model): building
// a TU with -DXTASK_MODEL_CHECK_MUTATE_BQUEUE weakens the producer's count
// publication from release to relaxed. The consumer's batched pop acquires
// that counter precisely to make its relaxed slot loads safe, so the
// weakened variant lets xcheck hand the consumer a stale (null) slot — the
// seeded bug the smoke test must find. Never define this outside that test.
#if defined(XTASK_MODEL_CHECK_MUTATE_BQUEUE)
#define XTASK_BQUEUE_COUNT_ORDER ::std::memory_order_relaxed
#else
#define XTASK_BQUEUE_COUNT_ORDER ::std::memory_order_release
#endif

namespace xtask {

/// SPSC lock-free queue of pointers. `T` must be a pointer type: the queue
/// reserves nullptr as the "slot empty" marker that replaces shared
/// head/tail indices.
///
/// Thread-safety contract: exactly one thread calls `push`/`push_batch`
/// (the producer) and exactly one thread calls `pop`/`pop_batch` (the
/// consumer). They may be the same thread. All other members are safe from
/// any thread as documented.
template <typename T>
class BQueue {
  static_assert(std::is_pointer_v<T>, "BQueue stores pointers");

 public:
  /// `capacity` must be a power of two and at least 2. `batch` is the probe
  /// distance: the producer declares the queue full when the slot `batch`
  /// entries ahead is still occupied, and the consumer hunts for available
  /// batches by halving from `batch` (B-Queue's deadlock-free backtracking).
  explicit BQueue(std::uint32_t capacity = 2048, std::uint32_t batch = 64)
      : mask_(capacity - 1),
        batch_(batch < capacity ? batch : capacity / 2),
        slots_(new atomic<T>[capacity]) {
    XTASK_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    XTASK_CHECK(batch_ >= 1);
    for (std::uint32_t i = 0; i < capacity; ++i)
      slots_[i].store(nullptr, std::memory_order_relaxed);
  }

  BQueue(const BQueue&) = delete;
  BQueue& operator=(const BQueue&) = delete;

  std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the queue is (conservatively) full:
  /// the probe slot `batch` entries ahead is still occupied. A false return
  /// is the signal the runtime uses to execute the task immediately instead
  /// of queueing it (§II-B).
  bool push(T value) noexcept {
    XTASK_CHECK(value != nullptr);
    // Chaos hook: a forced "full" report is indistinguishable from a slow
    // consumer and must route the caller onto its backpressure path.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePush))
      return false;
    if (prod_.head == prod_.batch_head) {
      const std::uint32_t probe = prod_.head + batch_;
      if (slots_[probe & mask_].load(std::memory_order_acquire) != nullptr)
        return false;  // consumer has not freed the next batch yet
      prod_.batch_head = probe;
    }
    slots_[prod_.head & mask_].store(value, std::memory_order_release);
    ++prod_.head;
    prod_.count.store(prod_.head, XTASK_BQUEUE_COUNT_ORDER);
    return true;
  }

  /// Producer side. Push up to `n` values in one shot; returns how many
  /// were enqueued (a prefix of `values`). One acquire of the consumer's
  /// pop counter bounds the free space, so the per-element cost is a single
  /// release store — no per-element probe. Unlike `push`'s conservative
  /// batch probe this uses the exact occupancy, so it can fill the queue
  /// completely.
  std::size_t push_batch(T const* values, std::size_t n) noexcept {
    if (n == 0) return 0;
    // Chaos hook: same contract as push — a forced "full" pushes zero and
    // the caller takes its backpressure path for the whole batch.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePush))
      return 0;
    // The acquire pairs with the consumer's release store of its count,
    // which follows its null-stores in program order: every slot counted
    // as popped is already nulled and safely writable.
    const std::uint32_t popped = cons_.count.load(std::memory_order_acquire);
    const std::uint32_t free = capacity() - (prod_.head - popped);
    const std::size_t k = n < free ? n : free;
    for (std::size_t i = 0; i < k; ++i) {
      XTASK_CHECK(values[i] != nullptr);
      slots_[(prod_.head + static_cast<std::uint32_t>(i)) & mask_].store(
          values[i], std::memory_order_release);
    }
    prod_.head += static_cast<std::uint32_t>(k);
    prod_.count.store(prod_.head, XTASK_BQUEUE_COUNT_ORDER);
    // Slots up to `popped + capacity` are known free; credit them to the
    // scalar push path so it skips its probe until they are used up.
    prod_.batch_head = popped + capacity();
    return k;
  }

  /// Consumer side. Returns nullptr when no element could be found. Uses
  /// backtracking: probe `batch` ahead, halving the distance until a filled
  /// slot is found, so the consumer never deadlocks waiting for a full
  /// batch the producer will not complete.
  T pop() noexcept {
    // Chaos hook: a forced miss models the transient emptiness the probe
    // protocol already produces; the consumer simply polls again later.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePop))
      return nullptr;
    if (cons_.tail == cons_.batch_tail) {
      std::uint32_t b = batch_;
      while (slots_[(cons_.tail + b - 1) & mask_].load(
                 std::memory_order_acquire) == nullptr) {
        b >>= 1;
        if (b == 0) return nullptr;  // queue empty
      }
      cons_.batch_tail = cons_.tail + b;
    }
    // The successful acquire probe synchronizes with the producer's release
    // store of the probed slot, which orders all earlier slot stores, so a
    // plain relaxed load of this slot would be racy only if the slot were
    // beyond the probe; it is not.
    T value = slots_[cons_.tail & mask_].load(std::memory_order_acquire);
    if (value == nullptr) return nullptr;  // defensive; cannot happen in SPSC
    // Release the slot so the producer's probe observes it as free only
    // after our read of the value is complete.
    slots_[cons_.tail & mask_].store(nullptr, std::memory_order_release);
    ++cons_.tail;
    cons_.count.store(cons_.tail, std::memory_order_release);
    return value;
  }

  /// Consumer side. Pop up to `max` values into `out`; returns how many
  /// were dequeued. One acquire of the producer's push counter bounds the
  /// available run, so slot loads are relaxed (the counter acquire already
  /// made them visible) and only the null-stores pay a release.
  std::size_t pop_batch(T* out, std::size_t max) noexcept {
    if (max == 0) return 0;
    // Chaos hook: same contract as pop — a forced miss yields zero.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePop))
      return 0;
    // Pairs with the producer's release store of its count, which follows
    // its slot stores: every slot counted as pushed holds a visible value.
    const std::uint32_t pushed = prod_.count.load(std::memory_order_acquire);
    const std::uint32_t avail = pushed - cons_.tail;
    const std::size_t k = max < avail ? max : avail;
    for (std::size_t i = 0; i < k; ++i) {
      atomic<T>& slot =
          slots_[(cons_.tail + static_cast<std::uint32_t>(i)) & mask_];
      out[i] = slot.load(std::memory_order_relaxed);
      // Release so the producer's free-space probe sees the null only
      // after our read of the value completed.
      slot.store(nullptr, std::memory_order_release);
    }
    cons_.tail += static_cast<std::uint32_t>(k);
    cons_.count.store(cons_.tail, std::memory_order_release);
    // Slots below `pushed` are known occupied; credit the remainder to the
    // scalar pop path so it skips its backtracking probe.
    cons_.batch_tail = pushed;
    return k;
  }

  /// True when the occupancy counters agree that nothing is queued. Safe
  /// from any thread; may race with concurrent operations (a stale answer
  /// is transient, never sticky).
  bool empty() const noexcept {
    // Read the pop count first: if a pop sneaks in between the loads the
    // result errs toward "non-empty", matching the probe-based contract
    // (false "empty" only when genuinely drained at some instant).
    const std::uint32_t popped = cons_.count.load(std::memory_order_acquire);
    const std::uint32_t pushed = prod_.count.load(std::memory_order_acquire);
    return pushed == popped;
  }

  /// Approximate occupancy from the single-writer counters: two loads,
  /// O(1). Safe from any thread; exact when both roles are quiescent.
  std::uint32_t size_approx() const noexcept {
    // Pop count first so a racing push inflates rather than underflows the
    // unsigned difference.
    const std::uint32_t popped = cons_.count.load(std::memory_order_acquire);
    const std::uint32_t pushed = prod_.count.load(std::memory_order_acquire);
    return pushed - popped;
  }

  /// Approximate free slots, clamped to [0, capacity]. Safe from any
  /// thread; the clamp absorbs the transient over-count size_approx can
  /// report when a push lands between its two loads. Admission control
  /// reads this as a backpressure signal — it errs toward "fuller", never
  /// toward promising space that is not there.
  std::uint32_t free_space_approx() const noexcept {
    const std::uint32_t used = size_approx();
    const std::uint32_t cap = capacity();
    return used >= cap ? 0 : cap - used;
  }

 private:
  struct alignas(kCacheLine) ProducerState {
    std::uint32_t head = 0;
    std::uint32_t batch_head = 0;
    /// Total pushes, published after each slot store. Single writer (the
    /// producer); plain release stores, no RMW.
    atomic<std::uint32_t> count{0};
  };
  struct alignas(kCacheLine) ConsumerState {
    std::uint32_t tail = 0;
    std::uint32_t batch_tail = 0;
    /// Total pops, published after each slot null-store. Single writer
    /// (the consumer); plain release stores, no RMW.
    atomic<std::uint32_t> count{0};
  };

  const std::uint32_t mask_;
  const std::uint32_t batch_;
  std::unique_ptr<atomic<T>[]> slots_;
  ProducerState prod_;
  ConsumerState cons_;
};

}  // namespace xtask
