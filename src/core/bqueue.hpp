// B-Queue: a single-producer single-consumer lock-free ring buffer using
// slot-NULL synchronization and batched index probing (paper §II-B).
//
// The producer and consumer never share head/tail indices; each side keeps
// its indices private and infers the other side's progress by probing slot
// contents. Synchronization is one release store / acquire load per
// operation and **no read-modify-write atomics**, which is what the paper
// means by "lock-less": per-operation latency stays in the tens of cycles
// because the only coherence traffic is the slot cache line itself, and
// even that is amortized by probing a batch ahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "core/common.hpp"
#include "core/fault.hpp"

namespace xtask {

/// SPSC lock-free queue of pointers. `T` must be a pointer type: the queue
/// reserves nullptr as the "slot empty" marker that replaces shared
/// head/tail indices.
///
/// Thread-safety contract: exactly one thread calls `push` (the producer)
/// and exactly one thread calls `pop` (the consumer). They may be the same
/// thread. All other members are safe from either role as documented.
template <typename T>
class BQueue {
  static_assert(std::is_pointer_v<T>, "BQueue stores pointers");

 public:
  /// `capacity` must be a power of two and at least 2. `batch` is the probe
  /// distance: the producer declares the queue full when the slot `batch`
  /// entries ahead is still occupied, and the consumer hunts for available
  /// batches by halving from `batch` (B-Queue's deadlock-free backtracking).
  explicit BQueue(std::uint32_t capacity = 2048, std::uint32_t batch = 64)
      : mask_(capacity - 1),
        batch_(batch < capacity ? batch : capacity / 2),
        slots_(new std::atomic<T>[capacity]) {
    XTASK_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    XTASK_CHECK(batch_ >= 1);
    for (std::uint32_t i = 0; i < capacity; ++i)
      slots_[i].store(nullptr, std::memory_order_relaxed);
  }

  BQueue(const BQueue&) = delete;
  BQueue& operator=(const BQueue&) = delete;

  std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the queue is (conservatively) full:
  /// the probe slot `batch` entries ahead is still occupied. A false return
  /// is the signal the runtime uses to execute the task immediately instead
  /// of queueing it (§II-B).
  bool push(T value) noexcept {
    XTASK_CHECK(value != nullptr);
    // Chaos hook: a forced "full" report is indistinguishable from a slow
    // consumer and must route the caller onto its backpressure path.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePush))
      return false;
    if (prod_.head == prod_.batch_head) {
      const std::uint32_t probe = prod_.head + batch_;
      if (slots_[probe & mask_].load(std::memory_order_acquire) != nullptr)
        return false;  // consumer has not freed the next batch yet
      prod_.batch_head = probe;
    }
    slots_[prod_.head & mask_].store(value, std::memory_order_release);
    ++prod_.head;
    return true;
  }

  /// Consumer side. Returns nullptr when no element could be found. Uses
  /// backtracking: probe `batch` ahead, halving the distance until a filled
  /// slot is found, so the consumer never deadlocks waiting for a full
  /// batch the producer will not complete.
  T pop() noexcept {
    // Chaos hook: a forced miss models the transient emptiness the probe
    // protocol already produces; the consumer simply polls again later.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kQueuePop))
      return nullptr;
    if (cons_.tail == cons_.batch_tail) {
      std::uint32_t b = batch_;
      while (slots_[(cons_.tail + b - 1) & mask_].load(
                 std::memory_order_acquire) == nullptr) {
        b >>= 1;
        if (b == 0) return nullptr;  // queue empty
      }
      cons_.batch_tail = cons_.tail + b;
    }
    // The successful acquire probe synchronizes with the producer's release
    // store of the probed slot, which orders all earlier slot stores, so a
    // plain relaxed load of this slot would be racy only if the slot were
    // beyond the probe; it is not.
    T value = slots_[cons_.tail & mask_].load(std::memory_order_acquire);
    if (value == nullptr) return nullptr;  // defensive; cannot happen in SPSC
    // Release the slot so the producer's probe observes it as free only
    // after our read of the value is complete.
    slots_[cons_.tail & mask_].store(nullptr, std::memory_order_release);
    ++cons_.tail;
    return value;
  }

  /// Consumer-side view: true when the next slot holds no element. May race
  /// with a concurrent push (a false "empty" is transient, never sticky).
  bool empty() const noexcept {
    return slots_[cons_.tail & mask_].load(std::memory_order_acquire) ==
           nullptr;
  }

  /// Approximate occupancy; only exact when both roles are quiescent.
  std::uint32_t size_approx() const noexcept {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i <= mask_; ++i)
      if (slots_[i].load(std::memory_order_relaxed) != nullptr) ++n;
    return n;
  }

 private:
  struct alignas(kCacheLine) ProducerState {
    std::uint32_t head = 0;
    std::uint32_t batch_head = 0;
  };
  struct alignas(kCacheLine) ConsumerState {
    std::uint32_t tail = 0;
    std::uint32_t batch_tail = 0;
  };

  const std::uint32_t mask_;
  const std::uint32_t batch_;
  std::unique_ptr<std::atomic<T>[]> slots_;
  ProducerState prod_;
  ConsumerState cons_;
};

}  // namespace xtask
