// C API facade implementation: thin adapters over Runtime/TaskContext.
#include "core/xtask_c.h"

#include "core/runtime.hpp"

using xtask::Config;
using xtask::Runtime;
using xtask::TaskContext;

extern "C" {

struct xtask_runtime_t {
  Runtime rt;
  explicit xtask_runtime_t(const Config& cfg) : rt(cfg) {}
};

// xtask_context_t is a reinterpretation of TaskContext; it is never
// instantiated directly.

static TaskContext* unwrap(xtask_context_t* ctx) {
  return reinterpret_cast<TaskContext*>(ctx);
}

xtask_runtime_t* xtask_create(int num_threads, xtask_dlb_t dlb) {
  Config cfg;
  if (num_threads > 0) cfg.num_threads = num_threads;
  switch (dlb) {
    case XTASK_DLB_REDIRECT_PUSH:
      cfg.dlb = xtask::DlbKind::kRedirectPush;
      break;
    case XTASK_DLB_WORK_STEAL:
      cfg.dlb = xtask::DlbKind::kWorkSteal;
      break;
    case XTASK_DLB_ADAPTIVE:
      cfg.dlb = xtask::DlbKind::kAdaptive;
      break;
    default:
      cfg.dlb = xtask::DlbKind::kNone;
      break;
  }
  return new xtask_runtime_t(cfg);
}

void xtask_destroy(xtask_runtime_t* rt) { delete rt; }

void xtask_run(xtask_runtime_t* rt, xtask_fn_t root, void* arg) {
  rt->rt.run([root, arg](TaskContext& ctx) {
    root(reinterpret_cast<xtask_context_t*>(&ctx), arg);
  });
}

void xtask_spawn(xtask_context_t* ctx, xtask_fn_t fn, void* arg) {
  unwrap(ctx)->spawn([fn, arg](TaskContext& child) {
    fn(reinterpret_cast<xtask_context_t*>(&child), arg);
  });
}

void xtask_taskwait(xtask_context_t* ctx) { unwrap(ctx)->taskwait(); }

int xtask_taskyield(xtask_context_t* ctx) {
  return unwrap(ctx)->taskyield() ? 1 : 0;
}

int xtask_worker_id(const xtask_context_t* ctx) {
  return reinterpret_cast<const TaskContext*>(ctx)->worker_id();
}

void xtask_get_stats(const xtask_runtime_t* rt, xtask_stats_t* out) {
  const xtask::Counters c = rt->rt.profiler().total_counters();
  out->tasks_created = c.ntasks_created;
  out->tasks_executed = c.ntasks_executed;
  out->tasks_self = c.ntasks_self;
  out->tasks_numa_local = c.ntasks_local;
  out->tasks_numa_remote = c.ntasks_remote;
  out->steal_requests_sent = c.nreq_sent;
  out->steal_requests_handled = c.nreq_handled;
  out->tasks_stolen = c.nsteal_local + c.nsteal_remote;
}

}  // extern "C"
