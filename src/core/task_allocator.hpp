// Multi-level task allocator, modeled on the LLVM OpenMP fast allocator the
// paper credits for LOMP's task-creation advantage (§VI-A): a thread-local
// free list first, then a lock-free shared pool, then the system allocator.
//
// The shared level is where runtimes serialize at fine granularity (Álvarez
// et al.): the original reproduction guarded it with a std::mutex, so every
// spill/refill took a futex round-trip under contention — and a preempted
// lock holder stalls every other thread's allocator. It is now a set of
// per-NUMA-zone lock-free sub-pools of descriptor *batches*:
//
//   * Transfers move whole batches (`kBatch` = 32 descriptors): one
//     successful CAS hands an entire batch over, so the shared level costs
//     ~1/32 CAS per task even when every allocation misses the local list.
//   * Batches live as dense pointer arrays in a fixed per-zone cell
//     array, and cells move between a lock-free *free* stack and a
//     lock-free *full* stack (Treiber stacks of cell indices with an ABA
//     tag packed beside the index). Both push and pop commit with a
//     single CAS — there is no claim-then-publish window, so a thread
//     preempted mid-transfer holds only its own private cell and never
//     stalls the pool (a Vyukov-ring variant measured here anti-scaled
//     under oversubscription for exactly that reason: a preempted
//     claimant blocks the FIFO head for a whole scheduling quantum).
//     LIFO order also keeps the hot cells and the descriptors they carry
//     cache-resident. Stale `next` reads in the pop loop are loads of a
//     fixed-lifetime atomic index — benign, tag-checked, TSAN-clean; an
//     intrusive variant chaining descriptors through their dead payloads
//     was rejected both for its racy stale pointer reads and because a
//     32-link walk is 32 serially dependent cache misses.
//   * The cell array is preallocated once per zone, so recycling performs
//     no per-operation auxiliary allocation, and pooled descriptors are
//     never written to at all — payload bytes survive pool residency
//     bit-for-bit.
//   * No path waits on another thread: with no free cell the releaser
//     frees the overflow batch to the system (the pool is a bounded
//     cache, not an owner of record); with no full cell the acquirer
//     probes the other zones' sub-pools, then falls through to the
//     system allocator.
//
// Generic over the descriptor type so both the xtask runtime (xtask::Task)
// and the LOMP-like baseline reuse the same levels.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

/// Allocation policy for task descriptors.
enum class AllocatorMode {
  /// Call the (synchronizing) system allocator for every task, the way
  /// GOMP does. Under fine-grained tasking this serializes creation.
  kMalloc,
  /// LOMP-style multi-level allocator: (i) thread-local free list,
  /// (ii) shared lock-free batch pool, (iii) system allocator. Level (i)
  /// makes task allocation embarrassingly parallel for recycled tasks.
  kMultiLevel,
};

/// Per-worker allocator front-end over a shared lock-free overflow pool.
///
/// Each worker owns one `PoolAllocator`; `allocate`/`release` are called
/// only by the owning worker thread. Descriptors executed by a different
/// worker than the one that created them are released to the *executor's*
/// list — the same locality-agnostic recycling LOMP performs.
template <typename T>
class PoolAllocator {
 public:
  /// Descriptors per shared-pool batch: one ring-cell claim (one CAS)
  /// moves this many at once.
  static constexpr std::size_t kBatch = 32;

  /// Shared state: per-zone lock-free batch pools plus allocation
  /// statistics. Descriptors parked in the pool are never dereferenced or
  /// written to — their payload survives pool residency untouched (the
  /// stress tests stamp descriptors across recycling to prove it).
  class SharedPool {
   public:
    explicit SharedPool(AllocatorMode mode, int num_zones = 1)
        : mode_(mode),
          zones_(static_cast<std::size_t>(num_zones < 1 ? 1 : num_zones)) {
      for (Zone& z : zones_) {
        z.cells = std::make_unique<Cell[]>(kCells);
        // Thread every cell onto the free stack.
        for (std::uint32_t i = 0; i < kCells; ++i)
          z.cells[i].next.store(i + 1 < kCells ? i + 1 : kNil,
                                std::memory_order_relaxed);
        z.free.store(pack(0, 0), std::memory_order_relaxed);
        z.full.store(pack(kNil, 0), std::memory_order_relaxed);
      }
    }

    ~SharedPool() {
      // Single-threaded by contract: all PoolAllocators have drained back
      // into the pool before it dies (runtimes destroy workers first).
      T* batch[kBatch];
      for (Zone& z : zones_) {
        for (std::size_t n = dequeue(z, batch); n > 0;
             n = dequeue(z, batch))
          for (std::size_t i = 0; i < n; ++i) destroy(batch[i]);
      }
    }

    SharedPool(const SharedPool&) = delete;
    SharedPool& operator=(const SharedPool&) = delete;

    AllocatorMode mode() const noexcept { return mode_; }
    int num_zones() const noexcept { return static_cast<int>(zones_.size()); }

    /// Grab up to `max` recycled descriptors, preferring `zone`'s sub-pool
    /// and falling over to the other zones when it is empty. One ring
    /// dequeue — a single successful CAS — transfers a whole batch.
    std::size_t acquire_batch(T** out, std::size_t max, int zone = 0) {
      if (max == 0) return 0;
      const int nz = static_cast<int>(zones_.size());
      if (max >= kBatch) {
        // Fast path (the allocator refill): any batch fits, so dequeue
        // straight into the caller's buffer with no intermediate copy.
        for (int i = 0; i < nz; ++i) {
          const std::size_t n =
              dequeue(zones_[static_cast<std::size_t>((zone + i) % nz)], out);
          if (n > 0) return n;
        }
        return 0;
      }
      T* batch[kBatch];
      for (int i = 0; i < nz; ++i) {
        Zone& z = zones_[static_cast<std::size_t>((zone + i) % nz)];
        const std::size_t n = dequeue(z, batch);
        if (n == 0) continue;
        const std::size_t taken = n < max ? n : max;
        for (std::size_t j = 0; j < taken; ++j) out[j] = batch[j];
        if (taken < n) {
          // Caller asked for less than a batch: re-pool the remainder.
          if (!enqueue(z, batch + taken, n - taken)) {
            overflow_frees_.fetch_add(1, std::memory_order_relaxed);
            for (std::size_t j = taken; j < n; ++j) destroy(batch[j]);
          }
        }
        return taken;
      }
      return 0;
    }

    /// Return descriptors to `zone`'s sub-pool in batches of at most
    /// `kBatch`, each published with one CAS; if every ring is full the
    /// overflow batch is freed to the system (the pool is a cache, not an
    /// owner of record).
    void release_batch(T* const* items, std::size_t count, int zone = 0) {
      const int nz = static_cast<int>(zones_.size());
      std::size_t i = 0;
      while (i < count) {
        const std::size_t n = (count - i) < kBatch ? (count - i) : kBatch;
        bool pooled = false;
        for (int k = 0; k < nz && !pooled; ++k)
          pooled = enqueue(zones_[static_cast<std::size_t>((zone + k) % nz)],
                           items + i, n);
        if (!pooled) {
          overflow_frees_.fetch_add(1, std::memory_order_relaxed);
          for (std::size_t j = 0; j < n; ++j) destroy(items[i + j]);
        }
        i += n;
      }
    }

    /// Descriptors ever obtained from the system allocator. Tests and the
    /// allocator microbench use this to confirm level-(i) hits dominate
    /// under recycling.
    std::uint64_t system_allocs() const noexcept {
      return system_allocs_.load(std::memory_order_relaxed);
    }
    void note_system_alloc() noexcept {
      system_allocs_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Batches handed back to the system because every ring was full
    /// (bounded pool memory; diagnostics only).
    std::uint64_t overflow_frees() const noexcept {
      return overflow_frees_.load(std::memory_order_relaxed);
    }

   private:
    friend class PoolAllocator;

    /// One batch cell: a dense array of descriptor pointers plus the
    /// intrusive stack link. `count`/`items` are plain fields — a cell is
    /// only written by the thread that popped it off the free stack and
    /// only read by the thread that popped it off the full stack, and the
    /// push(release)/pop(acquire) CAS pair orders those accesses. `next`
    /// is atomic because the pop loop may read it for a cell that another
    /// thread just claimed; the tagged-head CAS discards such stale reads.
    struct alignas(kCacheLine) Cell {
      atomic<std::uint32_t> next{kNil};
      std::uint32_t count = 0;
      T* items[kBatch];
    };

    /// Per-zone pair of Treiber stacks over a fixed cell array. 256 cells
    /// x 32 descriptors bounds each sub-pool at 8K cached descriptors.
    struct alignas(kCacheLine) Zone {
      std::unique_ptr<Cell[]> cells;
      alignas(kCacheLine) atomic<std::uint64_t> full{0};
      alignas(kCacheLine) atomic<std::uint64_t> free{0};
    };
    static constexpr std::uint32_t kCells = 256;
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /// Stack heads pack {aba_tag:32, cell_index:32} into one CAS-able
    /// word; the tag advances on every successful push or pop.
    static constexpr std::uint64_t pack(std::uint32_t idx,
                                        std::uint32_t tag) noexcept {
      return (static_cast<std::uint64_t>(tag) << 32) | idx;
    }
    static constexpr std::uint32_t index_of(std::uint64_t head) noexcept {
      return static_cast<std::uint32_t>(head);
    }
    static constexpr std::uint32_t tag_of(std::uint64_t head) noexcept {
      return static_cast<std::uint32_t>(head >> 32);
    }

    /// Pop a cell index off `stack`, kNil when empty. The single
    /// acquire-CAS is the whole commit: a thread preempted anywhere in
    /// here blocks nobody.
    std::uint32_t pop_cell(Zone& z, atomic<std::uint64_t>& stack)
        noexcept {
      std::uint64_t head = stack.load(std::memory_order_acquire);
      for (;;) {
        const std::uint32_t idx = index_of(head);
        if (idx == kNil) return kNil;
        const std::uint32_t next =
            z.cells[idx].next.load(std::memory_order_relaxed);
        if (stack.compare_exchange_weak(head, pack(next, tag_of(head) + 1),
                                        std::memory_order_acquire,
                                        std::memory_order_acquire))
          return idx;
      }
    }

    /// Push an exclusively-owned cell onto `stack` (single release-CAS).
    void push_cell(Zone& z, atomic<std::uint64_t>& stack,
                   std::uint32_t idx) noexcept {
      std::uint64_t head = stack.load(std::memory_order_relaxed);
      for (;;) {
        z.cells[idx].next.store(index_of(head), std::memory_order_relaxed);
        if (stack.compare_exchange_weak(head, pack(idx, tag_of(head) + 1),
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
          return;
      }
    }

    /// Publish one batch: free cell -> fill -> full stack. False when the
    /// zone has no free cell (pool full).
    bool enqueue(Zone& z, T* const* items, std::size_t n) noexcept {
      const std::uint32_t idx = pop_cell(z, z.free);
      if (idx == kNil) return false;
      Cell& c = z.cells[idx];
      c.count = static_cast<std::uint32_t>(n);
      for (std::size_t i = 0; i < n; ++i) c.items[i] = items[i];
      push_cell(z, z.full, idx);
      return true;
    }

    /// Take one whole batch into `out` (sized >= kBatch); returns its
    /// size, 0 when the zone has no full cell.
    std::size_t dequeue(Zone& z, T** out) noexcept {
      const std::uint32_t idx = pop_cell(z, z.full);
      if (idx == kNil) return 0;
      Cell& c = z.cells[idx];
      const std::size_t n = c.count;
      for (std::size_t i = 0; i < n; ++i) out[i] = c.items[i];
      push_cell(z, z.free, idx);
      return n;
    }

    static void destroy(T* t) noexcept {
      t->~T();
      ::operator delete(t, std::align_val_t{kCacheLine});
    }

    const AllocatorMode mode_;
    std::vector<Zone> zones_;
    atomic<std::uint64_t> system_allocs_{0};
    atomic<std::uint64_t> overflow_frees_{0};
  };

  /// `zone` keys the shared level to the owner's NUMA zone
  /// (Topology::zone_of), so recycled descriptors preferentially circulate
  /// within a socket.
  explicit PoolAllocator(SharedPool& shared, int zone = 0)
      : shared_(&shared), zone_(zone) {}

  ~PoolAllocator() {
    // Hand everything to the shared pool, which outlives the workers by
    // construction order in the runtimes, so it can free them.
    if (!local_.empty())
      shared_->release_batch(local_.data(), local_.size(), zone_);
    local_.clear();
  }

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  /// Allocate a descriptor (recycled or fresh; always a constructed T).
  T* allocate() {
    if (shared_->mode() == AllocatorMode::kMalloc) {
      shared_->note_system_alloc();
      return system_allocate();
    }
    if (!local_.empty()) {
      ++local_hits_;
      T* t = local_.back();
      local_.pop_back();
      return t;
    }
    // Refill slow path: cycle-measured so the profiler can attribute
    // allocator churn (shared-pool round trips per region) precisely.
    const std::uint64_t t0 = rdtscp();
    T* batch[kBatch];
    const std::size_t got = shared_->acquire_batch(batch, kBatch, zone_);
    ++refills_;
    refill_cycles_ += rdtscp() - t0;
    if (got > 0) {
      local_.insert(local_.end(), batch, batch + got - 1);
      return batch[got - 1];
    }
    shared_->note_system_alloc();
    return system_allocate();
  }

  /// Recycle a finished descriptor.
  void release(T* t) {
    if (shared_->mode() == AllocatorMode::kMalloc) {
      t->~T();
      ::operator delete(t, std::align_val_t{kCacheLine});
      return;
    }
    local_.push_back(t);
    if (local_.size() > kLocalCacheMax) {
      // Spill half to the shared pool so one thread does not hoard all
      // descriptors of a producer-consumer pattern.
      const std::size_t spill = local_.size() / 2;
      shared_->release_batch(local_.data() + (local_.size() - spill), spill,
                             zone_);
      local_.resize(local_.size() - spill);
      ++spills_;
    }
  }

  /// Level-(i) hits since construction (thread-local free-list reuses).
  std::uint64_t local_hits() const noexcept { return local_hits_; }
  /// Shared-pool refill attempts (local list ran dry), the cycles spent in
  /// them, and half-spills back to the pool — the allocator-churn profile.
  /// Owner-private: read from the owning thread or quiesced.
  std::uint64_t refills() const noexcept { return refills_; }
  std::uint64_t refill_cycles() const noexcept { return refill_cycles_; }
  std::uint64_t spills() const noexcept { return spills_; }

 private:
  static constexpr std::size_t kLocalCacheMax = 256;  // spill threshold

  static T* system_allocate() {
    void* mem = ::operator new(sizeof(T), std::align_val_t{kCacheLine});
    return ::new (mem) T;
  }

  SharedPool* shared_;
  const int zone_;
  std::vector<T*> local_;
  std::uint64_t local_hits_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t refill_cycles_ = 0;
  std::uint64_t spills_ = 0;
};

using TaskAllocator = PoolAllocator<Task>;

/// Thread-cached free list for small intrusive link nodes — the dependency
/// layer's per-edge ReleaseNode allocations (register/complete hot path).
/// `T` must expose a `next` member of type `T*`, reused as the free-list
/// link while the node is cached.
///
/// Ownership is locality-agnostic, like task descriptors: a node is
/// allocated by the registering thread, handed through the lock-free
/// release list, and freed by the *completing* thread into its own cache —
/// no cross-thread free list, no synchronization, just the ordinary
/// transfer-of-ownership the list's seal already provides. Each cache is
/// bounded so a completion-heavy thread cannot hoard every node.
template <typename T>
class ThreadNodeCache {
 public:
  static constexpr std::size_t kMaxCached = 256;

  ~ThreadNodeCache() {
    while (head_ != nullptr) {
      T* n = head_;
      head_ = n->next;
      delete n;
    }
  }

  T* get() {
    if (head_ == nullptr) return new T;
    T* n = head_;
    head_ = n->next;
    --size_;
    return n;
  }

  void put(T* n) noexcept {
    if (size_ >= kMaxCached) {
      delete n;
      return;
    }
    n->next = head_;
    head_ = n;
    ++size_;
  }

 private:
  T* head_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace xtask
