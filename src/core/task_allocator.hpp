// Multi-level task allocator, modeled on the LLVM OpenMP fast allocator the
// paper credits for LOMP's task-creation advantage (§VI-A): a thread-local
// free list first, then a shared pool, then the system allocator.
//
// Generic over the descriptor type so both the xtask runtime (xtask::Task)
// and the LOMP-like baseline reuse the same levels.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

/// Allocation policy for task descriptors.
enum class AllocatorMode {
  /// Call the (synchronizing) system allocator for every task, the way
  /// GOMP does. Under fine-grained tasking this serializes creation.
  kMalloc,
  /// LOMP-style multi-level allocator: (i) thread-local free list,
  /// (ii) shared overflow pool, (iii) system allocator. Level (i) makes
  /// task allocation embarrassingly parallel for recycled tasks.
  kMultiLevel,
};

/// Per-worker allocator front-end over a shared overflow pool.
///
/// Each worker owns one `PoolAllocator`; `allocate`/`release` are called
/// only by the owning worker thread. Descriptors executed by a different
/// worker than the one that created them are released to the *executor's*
/// list — the same locality-agnostic recycling LOMP performs.
template <typename T>
class PoolAllocator {
 public:
  /// Shared state: the overflow pool plus allocation statistics.
  class SharedPool {
   public:
    explicit SharedPool(AllocatorMode mode) : mode_(mode) {}
    ~SharedPool() {
      for (T* t : pool_) {
        t->~T();
        ::operator delete(t, std::align_val_t{kCacheLine});
      }
    }

    SharedPool(const SharedPool&) = delete;
    SharedPool& operator=(const SharedPool&) = delete;

    AllocatorMode mode() const noexcept { return mode_; }

    /// Grab up to `max` recycled descriptors from the overflow pool.
    std::size_t acquire_batch(T** out, std::size_t max) {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t n = pool_.size() < max ? pool_.size() : max;
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = pool_.back();
        pool_.pop_back();
      }
      return n;
    }

    /// Return a batch of descriptors to the overflow pool.
    void release_batch(T** items, std::size_t count) {
      std::lock_guard<std::mutex> lock(mu_);
      pool_.insert(pool_.end(), items, items + count);
    }

    /// Descriptors ever obtained from the system allocator. Tests and the
    /// allocator microbench use this to confirm level-(i) hits dominate
    /// under recycling.
    std::uint64_t system_allocs() const noexcept {
      return system_allocs_.load(std::memory_order_relaxed);
    }
    void note_system_alloc() noexcept {
      system_allocs_.fetch_add(1, std::memory_order_relaxed);
    }

   private:
    const AllocatorMode mode_;
    std::mutex mu_;
    std::vector<T*> pool_;
    std::atomic<std::uint64_t> system_allocs_{0};
  };

  explicit PoolAllocator(SharedPool& shared) : shared_(&shared) {}

  ~PoolAllocator() {
    // Hand everything to the shared pool, which outlives the workers by
    // construction order in the runtimes, so it can free them.
    if (!local_.empty()) shared_->release_batch(local_.data(), local_.size());
    local_.clear();
  }

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  /// Allocate a descriptor (recycled or fresh; always a constructed T).
  T* allocate() {
    if (shared_->mode() == AllocatorMode::kMalloc) {
      shared_->note_system_alloc();
      return system_allocate();
    }
    if (!local_.empty()) {
      ++local_hits_;
      T* t = local_.back();
      local_.pop_back();
      return t;
    }
    T* batch[kBatch];
    const std::size_t got = shared_->acquire_batch(batch, kBatch);
    if (got > 0) {
      local_.insert(local_.end(), batch, batch + got - 1);
      return batch[got - 1];
    }
    shared_->note_system_alloc();
    return system_allocate();
  }

  /// Recycle a finished descriptor.
  void release(T* t) {
    if (shared_->mode() == AllocatorMode::kMalloc) {
      t->~T();
      ::operator delete(t, std::align_val_t{kCacheLine});
      return;
    }
    local_.push_back(t);
    if (local_.size() > kLocalCacheMax) {
      // Spill half to the shared pool so one thread does not hoard all
      // descriptors of a producer-consumer pattern.
      const std::size_t spill = local_.size() / 2;
      shared_->release_batch(local_.data() + (local_.size() - spill), spill);
      local_.resize(local_.size() - spill);
    }
  }

  /// Level-(i) hits since construction (thread-local free-list reuses).
  std::uint64_t local_hits() const noexcept { return local_hits_; }

 private:
  static constexpr std::size_t kLocalCacheMax = 256;  // spill threshold
  static constexpr std::size_t kBatch = 32;           // pool transfer size

  static T* system_allocate() {
    void* mem = ::operator new(sizeof(T), std::align_val_t{kCacheLine});
    return ::new (mem) T;
  }

  SharedPool* shared_;
  std::vector<T*> local_;
  std::uint64_t local_hits_ = 0;
};

using TaskAllocator = PoolAllocator<Task>;

}  // namespace xtask
