// Lock-less messaging protocol for dynamic load balancing (paper §IV-B,
// Alg. 1 & 2): every worker owns a 64-bit *round* cell and a 64-bit
// *request* cell. A thief writes `pack(thief_id, victim_round)` into the
// victim's request cell; the victim recognizes the request as valid only if
// the embedded round equals its current round, handles it, and increments
// the round. Requests may be overwritten by competing thieves — that is the
// accepted lock-less trade-off, recovered by the thief's timeout retry.
//
// Layout follows the paper exactly: low 40 bits round number, high 24 bits
// worker id.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/common.hpp"
#include "core/fault.hpp"
#include "core/topology.hpp"

namespace xtask {

namespace steal {

inline constexpr int kRoundBits = 40;
inline constexpr std::uint64_t kRoundMask = (1ull << kRoundBits) - 1;
inline constexpr int kMaxWorkerId = (1 << (64 - kRoundBits)) - 1;

constexpr std::uint64_t pack(int thief_id, std::uint64_t round) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(thief_id))
          << kRoundBits) |
         (round & kRoundMask);
}
constexpr int thief_of(std::uint64_t request) noexcept {
  return static_cast<int>(request >> kRoundBits);
}
constexpr std::uint64_t round_of(std::uint64_t request) noexcept {
  return request & kRoundMask;
}

}  // namespace steal

/// The two per-worker cells. Padded so the victim's round (written by the
/// victim, polled by thieves) and the request cell (written by thieves,
/// polled by the victim) do not false-share.
struct StealCells {
  /// Monotone, starts at 1 (paper §IV-B); owned by the victim.
  alignas(kCacheLine) atomic<std::uint64_t> round{1};
  /// Written by thieves, consumed by the victim.
  alignas(kCacheLine) atomic<std::uint64_t> request{0};

  /// Thief side of Alg. 1: attempt to register `thief_id` with this
  /// victim. Returns true when the request was written (no newer request
  /// was already pending). Never uses RMW: a racing thief may overwrite
  /// us, which the timeout logic absorbs.
  bool try_request(int thief_id) noexcept {
    const std::uint64_t req = request.load(std::memory_order_acquire);
    const std::uint64_t r = round.load(std::memory_order_acquire);
    if (steal::round_of(req) >= r) return false;  // a request is pending
    // Chaos hook: drop the request after the thief believes it was sent —
    // the lost-message case the timeout retry (§IV-B) exists to absorb.
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kStealRequest))
      return true;
    request.store(steal::pack(thief_id, r), std::memory_order_release);
    return true;
  }

  /// Victim side of Alg. 2: check for a valid request. Returns the thief
  /// id, or -1 when no valid request is pending. Does NOT advance the
  /// round — the victim calls `complete_round()` once it finished (or
  /// abandoned) load balancing, making it willing to take new requests.
  int poll_request() noexcept {
    const std::uint64_t req = request.load(std::memory_order_acquire);
    const std::uint64_t r = round.load(std::memory_order_relaxed);
    if (steal::round_of(req) != r) return -1;
    return steal::thief_of(req);
  }

  /// Any-thread probe: is a steal request parked at this victim? Same
  /// validity rule as the thief's pending check in try_request, consuming
  /// nothing. A pending request means some thief ran dry and is waiting on
  /// this victim — admission control reads the count of such victims as an
  /// idle-demand signal (workers are starving, not overloaded).
  bool has_pending_request() const noexcept {
    const std::uint64_t req = request.load(std::memory_order_acquire);
    const std::uint64_t r = round.load(std::memory_order_acquire);
    return steal::round_of(req) >= r;
  }

  void complete_round() noexcept {
    // Chaos hook: delay the round advance so thieves observe a victim that
    // is slow to reopen — stretching the window their retry logic covers.
    if (FaultInjector* fi = fault_injector())
      fi->perturb(FaultPoint::kStealComplete);
    round.store(round.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }
};

/// Conditionally-random victim selection (paper §IV-B, after [11]): with
/// probability `p_local` pick a NUMA-local victim, otherwise a remote one.
/// Falls back to any-other-worker when the preferred class is empty (e.g.
/// a single-member zone has no local victims). Returns -1 when there is no
/// other worker at all.
int pick_victim(const Topology& topo, int self, double p_local,
                XorShift& rng) noexcept;

/// Bitmap-vectorized victim selection: the same conditional-random policy,
/// but restricted to workers whose XQueue row is visibly occupied.
/// `occupied` is the packed occupancy mask (bit v = worker v has work; the
/// caller clears its own bit) and `local_mask` the bits of `self`'s zone
/// peers — both cover the first 64 workers, so callers on larger teams
/// pass masks for that prefix and the excess falls back to `pick_victim`.
/// Choosing a victim is popcount + k-th-set-bit selection: no loop over
/// workers, no probing empty rows. Returns -1 when `occupied` is empty.
int pick_victim_masked(int self, double p_local, XorShift& rng,
                       std::uint64_t occupied,
                       std::uint64_t local_mask) noexcept;

}  // namespace xtask
