// Common low-level utilities shared across the xtask runtime.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <new>
#include <thread>

namespace xtask {

// Size used to pad shared data onto distinct cache lines. 64 bytes matches
// every x86-64 part the paper evaluates on; std::hardware_destructive_
// interference_size is not used because libstdc++ makes it ABI-unstable.
inline constexpr std::size_t kCacheLine = 64;

/// Read the processor timestamp counter. Mirrors the paper's use of
/// `rdtscp` (§V): monotonic per-core cycle counter, ensures prior loads are
/// globally visible, and is cheap enough to bracket fine-grained events.
inline std::uint64_t rdtscp() noexcept {
#if defined(__x86_64__)
  std::uint32_t lo, hi, aux;
  asm volatile("rdtscp" : "=a"(lo), "=d"(hi), "=c"(aux));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  // Portable fallback for non-x86 hosts; coarser but monotonic.
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull + ts.tv_nsec;
#endif
}

/// One polite busy-wait beat: the x86 `pause` hint (lowers power and frees
/// pipeline slots for the sibling hyperthread) or a scheduler yield where
/// no such hint exists.
inline void cpu_pause() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// xorshift128+ PRNG. Victim selection (Alg. 1) needs a generator that is
/// fast, per-thread, and seedable for reproducible experiments; the quality
/// bar is "uniform enough to pick victims", which xorshift128+ clears.
class XorShift {
 public:
  explicit XorShift(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    // SplitMix64 expansion so that small/sequential seeds give unrelated
    // streams.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t next() noexcept {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

namespace detail {
/// Consulted by fatal() before aborting. Null in production; the xcheck
/// model checker installs a handler that converts a failed XTASK_CHECK
/// inside a checked virtual thread into a reported (replayable) violation
/// instead of a process abort. A function pointer — not an #ifdef — so the
/// definition of fatal() is identical in every TU of a mixed binary.
inline void (*fatal_hook)(const char*) noexcept = nullptr;
}  // namespace detail

[[noreturn]] inline void fatal(const char* msg) noexcept {
  if (detail::fatal_hook != nullptr) detail::fatal_hook(msg);
  std::fprintf(stderr, "xtask fatal: %s\n", msg);
  std::abort();
}

#define XTASK_CHECK(cond)                                  \
  do {                                                     \
    if (!(cond)) ::xtask::fatal("check failed: " #cond);   \
  } while (0)

}  // namespace xtask

// ---------------------------------------------------------------------------
// Atomic alias layer. The runtime's lock-less core declares its shared
// words as `xtask::atomic<T>`. In production builds that is exactly
// std::atomic<T> — same type, same codegen, zero overhead. Under
// -DXTASK_MODEL_CHECK it resolves to the instrumented xcheck::xatomic<T>,
// which routes every access through the model checker's scheduler and
// weak-memory model (src/check/). Never mix the two flavors of the same
// header in one binary: the templates would collide under the ODR.
#if defined(XTASK_MODEL_CHECK)
#include "check/xatomic.hpp"

namespace xtask {
template <typename T>
using atomic = xcheck::xatomic<T>;
}  // namespace xtask
#else
#include <atomic>

namespace xtask {
template <typename T>
using atomic = std::atomic<T>;
}  // namespace xtask
#endif
