#include "core/runtime.hpp"

#include <algorithm>

namespace xtask {

namespace {

/// Single-writer counter bump: the owner is the only writer, so a plain
/// load+store (no RMW) is enough — this is the "lock-less" discipline the
/// paper applies to everything outside the XGOMP task count.
inline void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

inline void cpu_pause() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      topo_(cfg.numa_zones > 0
                ? Topology::synthetic(cfg.num_threads, cfg.numa_zones)
                : Topology::detect(cfg.num_threads)),
      prof_(cfg.num_threads, cfg.profile_events),
      xq_(cfg.num_threads, cfg.queue_capacity),
      central_(cfg.num_threads),
      tree_(cfg.num_threads),
      pool_(cfg.allocator) {
  XTASK_CHECK(cfg_.num_threads >= 1);
  XTASK_CHECK(cfg_.num_threads <= steal::kMaxWorkerId);
  workers_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int i = 0; i < cfg_.num_threads; ++i) {
    auto w = std::make_unique<detail::Worker>();
    w->id = i;
    w->rt = this;
    w->rng = XorShift(cfg_.seed + static_cast<std::uint64_t>(i) * 0x51ed2701);
    w->rr_cursor = static_cast<std::uint32_t>(i);  // round-robin starts at
                                                   // the master queue
    w->alloc = std::make_unique<TaskAllocator>(pool_);
    workers_.push_back(std::move(w));
  }
  for (int i = 1; i < cfg_.num_threads; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { thread_main(i); });
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    shutdown_ = true;
  }
  region_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Workers' allocators return descriptors to pool_ on destruction; destroy
  // them before pool_ goes away.
  workers_.clear();
}

void Runtime::thread_main(int id) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(id)];
  std::uint64_t my_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(region_mu_);
      region_cv_.wait(lock,
                      [&] { return shutdown_ || region_gen_ > my_gen; });
      if (shutdown_ && region_gen_ <= my_gen) return;
      my_gen = region_gen_;
    }
    worker_loop(w, my_gen);
    {
      std::lock_guard<std::mutex> lock(region_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void Runtime::run(std::function<void(TaskContext&)> root) {
  detail::Worker& w0 = *workers_[0];
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    workers_done_ = 0;
    gen = ++region_gen_;
  }

  // Create the root task *before* waking the team: its `created` increment
  // is what keeps the tree barrier's census from declaring the region
  // quiescent before the root body has run.
  Task* root_task = allocate_task(w0, nullptr);
  root_task->emplace([fn = std::move(root)](TaskContext& ctx) { fn(ctx); });

  region_cv_.notify_all();

  execute(w0, root_task);
  worker_loop(w0, gen);

  // Wait for the helper workers to observe the release and park again, so
  // a subsequent run() cannot race with stragglers of this region.
  std::unique_lock<std::mutex> lock(region_mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == cfg_.num_threads - 1; });
}

// --------------------------------------------------------------------------
// Task lifecycle.

Task* Runtime::allocate_task(detail::Worker& w, Task* parent) {
  Task* t = w.alloc->allocate();
  t->reset(parent, static_cast<std::uint16_t>(w.id));
  if (parent != nullptr && parent->group != nullptr) {
    t->group = parent->group;
    t->group->fetch_add(1, std::memory_order_relaxed);
  }
  if (parent != nullptr) {
    // Owner-thread-only increments would be wrong here: any worker running
    // `parent` may spawn concurrently with a sibling finishing, so these
    // two do need RMW. They are on the (uncontended) parent task line, not
    // on a global.
    parent->refs.fetch_add(1, std::memory_order_relaxed);
    parent->active_children.fetch_add(1, std::memory_order_relaxed);
  }
  bump(w.created);
  prof_.thread(w.id).counters.ntasks_created++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_created();
  return t;
}

Task* Runtime::dispatch(detail::Worker& w, Task* t) {
  // NA-RP: a victim with an open redirect session sends new tasks to the
  // thief instead of its static target (Alg. 3).
  if (w.redirect_thief >= 0) {
    if (xq_.push(w.id, w.redirect_thief, t)) {
      ++w.redirect_pushed;
      Counters& c = prof_.thread(w.id).counters;
      if (topo_.local(w.id, w.redirect_thief))
        c.nsteal_local++;
      else
        c.nsteal_remote++;
      if (w.redirect_pushed >=
          static_cast<std::uint32_t>(effective_dlb(w).n_steal))
        end_redirect_session(w);
      return nullptr;
    }
    // Thief queue full: the session ends (isTargetQFull branch of Alg. 3)
    // and this task falls through to the static balancer.
    prof_.thread(w.id).counters.nreq_target_full++;
    end_redirect_session(w);
  }

  // Static round-robin over all workers, starting with the master queue
  // (§II-B). A full target queue means the task runs immediately.
  const int target = static_cast<int>(
      w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
  ++w.rr_cursor;
  if (xq_.push(w.id, target, t)) {
    prof_.thread(w.id).counters.ntasks_static_push++;
    return nullptr;
  }
  prof_.thread(w.id).counters.ntasks_imm_exec++;
  return t;
}

void Runtime::execute(detail::Worker& w, Task* t) {
  t->executor = static_cast<std::uint16_t>(w.id);
  {
    Counters& c = prof_.thread(w.id).counters;
    if (t->creator == w.id)
      c.ntasks_self++;
    else if (topo_.local(w.id, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  const bool sample = cfg_.dlb == DlbKind::kAdaptive &&
                      (w.sample_tick++ & 15u) == 0;
  const std::uint64_t t0 = sample ? rdtscp() : 0;
  {
    ScopedEvent ev(prof_.thread(w.id), EventKind::kTask);
    TaskContext ctx(this, &w, t);
    t->invoke(t, ctx);
    if (ctx.dep_scope_) {
      // Tear down the dependence scope: return the address-map's task
      // references. Children themselves stay tracked via active_children.
      std::vector<Task*> refs;
      ctx.dep_scope_->close(&refs);
      for (Task* r : refs) deref(w, r);
    }
  }
  if (sample) {
    // Includes nested child executions when the body ran some inline;
    // still a usable size-class signal (and monotone with task size).
    const std::uint64_t dt = rdtscp() - t0;
    w.avg_task_cycles =
        w.avg_task_cycles == 0 ? dt
                               : w.avg_task_cycles + (dt - w.avg_task_cycles) / 8;
  }
  finish(w, t);
}

void Runtime::finish(detail::Worker& w, Task* t) {
  Task* parent = t->parent;
  std::atomic<std::uint64_t>* group = t->group;
  bump(w.executed);
  prof_.thread(w.id).counters.ntasks_executed++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_finished();
  // Release dependent successors whose last predecessor this was; they
  // enter the normal dispatch path on this worker.
  if (t->dep_state != nullptr) {
    std::vector<Task*> ready;
    detail::collect_ready_successors(t, &ready);
    for (Task* succ : ready) {
      if (Task* overflow = dispatch(w, succ)) execute(w, overflow);
    }
  }
  deref(w, t);
  if (parent != nullptr) {
    // Release so the waiting parent's acquire load sees this child's
    // side effects once the count hits zero.
    parent->active_children.fetch_sub(1, std::memory_order_release);
    deref(w, parent);
  }
  // Group membership is released last so group_wait's zero implies every
  // member's effects (release/acquire pair with the waiting loop).
  if (group != nullptr) group->fetch_sub(1, std::memory_order_release);
}

void Runtime::deref(detail::Worker& w, Task* t) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete t->dep_state;  // safe: no edges can target a fully-released task
    t->dep_state = nullptr;
    w.alloc->release(t);
  }
}

// --------------------------------------------------------------------------
// Scheduling.

Task* Runtime::find_task(detail::Worker& w) {
  Task* t = xq_.pop(w.id);
  if (t != nullptr) {
    w.idle_polls = 0;
    w.request_round_open = false;
    if (cfg_.dlb != DlbKind::kNone) victim_check(w);
  }
  return t;
}

void Runtime::idle_step(detail::Worker& w) {
  // A victim that went idle mid-redirect flushes the session: it has no
  // more spawns to redirect, so it re-opens itself to new requests.
  if (w.redirect_thief >= 0) end_redirect_session(w);

  if (cfg_.dlb != DlbKind::kNone && cfg_.num_threads > 1) {
    if (!w.request_round_open) {
      thief_send_requests(w);
      w.request_round_open = true;
      w.idle_polls = 0;
    } else if (++w.idle_polls >= effective_dlb(w).t_interval) {
      // Timeout (§IV-B): request lost/overwritten or victim idle — retry.
      thief_send_requests(w);
      w.idle_polls = 0;
    }
    // Even an idle worker can be a victim of redirected pushes building up
    // work for it, and — for NA-WS — of batch migration; it must keep
    // handling requests so two mutually-idle workers cannot livelock on
    // unanswered cells.
    victim_check(w);
  }
  cpu_pause();
}

void Runtime::worker_loop(detail::Worker& w, std::uint64_t gen) {
  bool arrived = false;
  int consecutive_idle = 0;
  std::uint64_t stall_start = 0;
  ThreadProfile& prof = prof_.thread(w.id);

  for (;;) {
    if (Task* t = find_task(w)) {
      if (stall_start != 0) {
        prof.record(EventKind::kStall, stall_start, rdtscp());
        stall_start = 0;
      }
      consecutive_idle = 0;
      execute(w, t);
      continue;
    }
    if (stall_start == 0 && prof_.events_enabled()) stall_start = rdtscp();
    idle_step(w);

    bool released = false;
    if (cfg_.barrier == BarrierKind::kCentral) {
      if (!arrived) {
        central_.arrive(gen);
        arrived = true;
      }
      released = central_.poll(gen);
    } else {
      released = tree_.poll(w.id, w.created.load(std::memory_order_relaxed),
                            w.executed.load(std::memory_order_relaxed), gen);
    }
    if (released) {
      if (stall_start != 0)
        prof.record(EventKind::kStall, stall_start, rdtscp());
      return;
    }
    if (cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= cfg_.yield_after_idle) {
      // Oversubscribed host: give the thread holding actual work a core.
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

// --------------------------------------------------------------------------
// Dynamic load balancing.

DlbConfig Runtime::effective_dlb(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb_cfg;
  // Table IV guideline rows, keyed by this worker's sampled task size.
  const std::uint64_t s = w.avg_task_cycles;
  if (s == 0 || s < 100) return {1, 2, 10'000, 1.0};
  if (s < 1'000) return {4, 16, 10'000, 1.0};
  if (s < 10'000) return {8, 32, 10'000, 0.5};
  return {24, 32, 1'000, 0.08};  // RP row (Table IV: P_local 3-12%)
}

DlbKind Runtime::effective_strategy(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb;
  return w.avg_task_cycles >= 10'000 ? DlbKind::kRedirectPush
                                     : DlbKind::kWorkSteal;
}

void Runtime::thief_send_requests(detail::Worker& w) {
  Counters& c = prof_.thread(w.id).counters;
  const DlbConfig dc = effective_dlb(w);
  for (int i = 0; i < dc.n_victim; ++i) {
    const int v = pick_victim(topo_, w.id, dc.p_local, w.rng);
    if (v < 0) return;
    if (workers_[static_cast<std::size_t>(v)]->cells.try_request(w.id))
      c.nreq_sent++;
  }
}

void Runtime::victim_check(detail::Worker& w) {
  if (w.redirect_thief >= 0) return;  // NA-RP session in progress
  const int thief = w.cells.poll_request();
  if (thief < 0 || thief == w.id) return;
  Counters& c = prof_.thread(w.id).counters;
  c.nreq_handled++;
  if (effective_strategy(w) == DlbKind::kRedirectPush) {
    // Open a redirect session (Alg. 3); the round completes when the
    // session ends so only one redirect target is active at a time.
    w.redirect_thief = thief;
    w.redirect_pushed = 0;
  } else {
    do_work_steal(w, thief);
    w.cells.complete_round();
  }
}

void Runtime::do_work_steal(detail::Worker& w, int thief) {
  // Alg. 4: migrate up to n_steal queued tasks from our own queues into
  // the thief's queue that we produce for — every hop stays SPSC-legal.
  Counters& c = prof_.thread(w.id).counters;
  const std::uint32_t n_steal =
      static_cast<std::uint32_t>(effective_dlb(w).n_steal);
  std::uint32_t moved = 0;
  while (moved < n_steal) {
    Task* t = xq_.pop(w.id);
    if (t == nullptr) {
      if (moved == 0) c.nreq_src_empty++;
      break;
    }
    if (!xq_.push(w.id, thief, t)) {
      c.nreq_target_full++;
      // Could not hand it over; keep it for ourselves. Our master queue
      // may itself be full, in which case the task runs right here.
      if (!xq_.push(w.id, w.id, t)) {
        prof_.thread(w.id).counters.ntasks_imm_exec++;
        execute(w, t);
      }
      break;
    }
    ++moved;
  }
  if (moved > 0) {
    c.nreq_has_steal++;
    if (topo_.local(w.id, thief))
      c.nsteal_local += moved;
    else
      c.nsteal_remote += moved;
  }
}

void Runtime::end_redirect_session(detail::Worker& w) {
  if (w.redirect_thief < 0) return;
  if (w.redirect_pushed > 0)
    prof_.thread(w.id).counters.nreq_has_steal++;
  else
    prof_.thread(w.id).counters.nreq_src_empty++;
  w.redirect_thief = -1;
  w.redirect_pushed = 0;
  w.cells.complete_round();
}

void Runtime::group_wait(detail::Worker& w,
                         std::atomic<std::uint64_t>& live) {
  int consecutive_idle = 0;
  while (live.load(std::memory_order_acquire) != 0) {
    if (Task* other = find_task(w)) {
      consecutive_idle = 0;
      execute(w, other);
      continue;
    }
    idle_step(w);
    if (cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

// --------------------------------------------------------------------------
// TaskContext.

bool TaskContext::taskyield() {
  detail::Worker& w = *w_;
  if (Task* t = rt_->find_task(w)) {
    rt_->execute(w, t);
    return true;
  }
  return false;
}

void TaskContext::taskwait() {
  if (current_ == nullptr) return;
  if (current_->active_children.load(std::memory_order_acquire) == 0) return;
  ScopedEvent ev(rt_->profiler().thread(w_->id), EventKind::kTaskWait);
  detail::Worker& w = *w_;
  int consecutive_idle = 0;
  while (current_->active_children.load(std::memory_order_acquire) != 0) {
    if (Task* t = rt_->find_task(w)) {
      consecutive_idle = 0;
      rt_->execute(w, t);
      continue;
    }
    rt_->idle_step(w);
    if (rt_->cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= rt_->cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

}  // namespace xtask
