#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace xtask {

namespace {

/// Single-writer counter bump: the owner is the only writer, so a plain
/// load+store (no RMW) is enough — this is the "lock-less" discipline the
/// paper applies to everything outside the XGOMP task count.
inline void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

/// An explicit Topology is the source of truth for machine shape: fold it
/// back into the scalar knobs so every downstream consumer (profiler
/// width, queue matrix, barriers) sees one consistent shape.
Config normalized(Config cfg) {
  if (cfg.topology.num_workers() > 0) {
    cfg.num_threads = cfg.topology.num_workers();
    cfg.numa_zones = cfg.topology.num_zones();
  }
  // barrier=auto resolves here, by the same static shape gate the mode
  // controller applies to dispatch: a small or oversubscribed team takes
  // the centralized task-count barrier (tree census passes each cost a
  // scheduler quantum when threads time-share cores, and a small team
  // cannot ping-pong the counter line hard enough to matter); at scale
  // the distributed tree census wins back the per-task atomic.
  if (cfg.barrier == BarrierKind::kAuto) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const bool oversubscribed = hw > 0 && cfg.num_threads > hw;
    cfg.barrier = (oversubscribed ||
                   cfg.num_threads <= ModeThresholds{}.direct_max_workers)
                      ? BarrierKind::kCentral
                      : BarrierKind::kTree;
  }
  return cfg;
}

/// TSC rate for the trace header (display/scaling only — records carry raw
/// rdtscp cycles). A ~2ms spin gives three significant digits, paid once at
/// construction and only when tracing is on.
double measure_cycles_per_us() {
  using clock = std::chrono::steady_clock;
  const auto w0 = clock::now();
  const std::uint64_t c0 = rdtscp();
  while (clock::now() - w0 < std::chrono::milliseconds(2)) {
  }
  const std::uint64_t c1 = rdtscp();
  const double us =
      std::chrono::duration<double, std::micro>(clock::now() - w0).count();
  return us > 0 ? static_cast<double>(c1 - c0) / us : 0.0;
}

}  // namespace

Runtime::Runtime(Config cfg)
    : cfg_(normalized(std::move(cfg))),
      topo_(cfg_.topology.num_workers() > 0
                ? cfg_.topology
                : cfg_.numa_zones > 0
                      ? Topology::synthetic(cfg_.num_threads, cfg_.numa_zones)
                      : Topology::detect(cfg_.num_threads)),
      prof_(cfg_.num_threads, cfg_.profile_events),
      xq_(cfg_.num_threads, cfg_.queue_capacity),
      central_(cfg_.num_threads),
      tree_(cfg_.num_threads),
      pool_(cfg_.allocator, topo_.num_zones()) {
  XTASK_CHECK(cfg_.num_threads >= 1);
  XTASK_CHECK(cfg_.num_threads <= steal::kMaxWorkerId);
  if (cfg_.quarantine && cfg_.heartbeat_ms == 0)
    throw std::invalid_argument(
        "xtask::Config: quarantine requires heartbeat_ms > 0 "
        "(recovery is driven by the heartbeat monitor)");
  hb_enabled_ = cfg_.heartbeat_ms > 0;
  guard_enabled_ = hb_enabled_ && cfg_.quarantine;
  // Adaptive dispatch: with dlb=adaptive on a real team, the dispatch
  // layer may run in direct mode (self-push + guard-borrowed stealing).
  // Guards must then cover every row consumption even when quarantine is
  // off — a thief borrowing a consumer identity is only legal through the
  // guard cell. The initial mode comes from the static shape (or the
  // forced dmode policy); the controller takes over once a census exists.
  adaptive_dispatch_ = cfg_.dlb == DlbKind::kAdaptive && cfg_.num_threads > 1;
  guards_active_ =
      guard_enabled_ ||
      (adaptive_dispatch_ &&
       cfg_.dispatch_mode != DispatchModePolicy::kMessaging);
  if (adaptive_dispatch_) {
    ModeThresholds thr;
    thr.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
    mode_ctl_ = ModeController(thr, cfg_.num_threads, topo_.num_zones());
    DispatchMode init = mode_ctl_.mode();
    if (cfg_.dispatch_mode == DispatchModePolicy::kMessaging)
      init = DispatchMode::kMessaging;
    else if (cfg_.dispatch_mode == DispatchModePolicy::kDirect)
      init = DispatchMode::kDirect;
    mode_.store(static_cast<std::uint32_t>(init), std::memory_order_relaxed);
  }
  workers_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int i = 0; i < cfg_.num_threads; ++i) {
    auto w = std::make_unique<detail::Worker>();
    w->id = i;
    w->rt = this;
    w->rng = XorShift(cfg_.seed + static_cast<std::uint64_t>(i) * 0x51ed2701);
    w->rr_cursor = static_cast<std::uint32_t>(i);  // round-robin starts at
                                                   // the master queue
    // Packed zone-peer mask for bitmap victim selection (first 64 workers).
    for (const int p : topo_.peers_of(i))
      if (p < 64) w->local_mask |= 1ull << p;
    // Key each worker's allocator to its NUMA zone so recycled descriptors
    // circulate within a socket before crossing the interconnect.
    w->alloc = std::make_unique<TaskAllocator>(pool_, topo_.zone_of(i));
    workers_.push_back(std::move(w));
  }
  if (cfg_.trace_mode == TraceMode::kRecord) {
    std::vector<std::uint8_t> zones(static_cast<std::size_t>(cfg_.num_threads));
    for (int i = 0; i < cfg_.num_threads; ++i)
      zones[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(topo_.zone_of(i));
    tracer_ = std::make_unique<trace::Recorder>(
        cfg_.num_threads, measure_cycles_per_us(), "xtask", topo_.describe(),
        std::move(zones));
    tracer_raw_ = tracer_.get();
  }
  for (int i = 1; i < cfg_.num_threads; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { thread_main(i); });
  start_watchdog();
  start_monitor();
}

Runtime::~Runtime() {
  stop_monitor();    // before workers_: it reads worker heartbeat cells
  watchdog_.stop();  // before workers_: its hooks read worker counters
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    shutdown_ = true;
  }
  region_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // All workers have quiesced, so the per-worker trace buffers are stable:
  // dump the recorded trace if a sink was configured. Never throw from a
  // destructor — report and carry on.
  if (tracer_ != nullptr && !cfg_.trace_file.empty()) {
    try {
      trace::write_file(tracer_->build(), cfg_.trace_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xtask: trace dump to '%s' failed: %s\n",
                   cfg_.trace_file.c_str(), e.what());
    }
  }
  // Workers' allocators return descriptors to pool_ on destruction; destroy
  // them before pool_ goes away.
  workers_.clear();
}

void Runtime::thread_main(int id) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(id)];
  std::uint64_t my_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(region_mu_);
      region_cv_.wait(lock,
                      [&] { return shutdown_ || region_gen_ > my_gen; });
      if (shutdown_ && region_gen_ <= my_gen) return;
      my_gen = region_gen_;
    }
    worker_loop(w, my_gen);
    {
      std::lock_guard<std::mutex> lock(region_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void Runtime::run(std::function<void(TaskContext&)> root) {
  detail::Worker& w0 = *workers_[0];
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    workers_done_ = 0;
    gen = ++region_gen_;
  }
  // Fresh region: clear leftover cancellation/error state. Single-threaded
  // here — the helpers are still parked behind region_cv_.
  region_cancel_.store(false, std::memory_order_relaxed);
  region_err_.reset();
  if (hb_enabled_) {
    // Fresh injection budget for worker 0 (helpers reset in worker_loop);
    // publish the generation for the monitor's proxy duties before the
    // region is visibly active.
    w0.stall_injected = false;
    w0.slow_injected = false;
    gen_pub_.store(gen, std::memory_order_relaxed);
  }
  region_active_.store(true, std::memory_order_release);

  // Create the root task *before* waking the team: its `created` increment
  // is what keeps the tree barrier's census from declaring the region
  // quiescent before the root body has run.
  Task* root_task = allocate_task(w0, nullptr);
  root_task->emplace([fn = std::move(root)](TaskContext& ctx) { fn(ctx); });

  region_cv_.notify_all();

  execute(w0, root_task);
  worker_loop(w0, gen);

  // Wait for the helper workers to observe the release and park again, so
  // a subsequent run() cannot race with stragglers of this region.
  {
    std::unique_lock<std::mutex> lock(region_mu_);
    done_cv_.wait(lock,
                  [&] { return workers_done_ == cfg_.num_threads - 1; });
  }
  region_active_.store(false, std::memory_order_relaxed);

  // The region has fully drained and every helper's effects are ordered
  // before the workers_done_ handshake above, so this read races with
  // nothing. Rethrow the first exception that reached the region boundary.
  if (region_err_.pending()) {
    if (std::exception_ptr ep = region_err_.take()) std::rethrow_exception(ep);
  }
}

// --------------------------------------------------------------------------
// Task lifecycle.

Task* Runtime::allocate_task(detail::Worker& w, Task* parent) {
  Task* t = w.alloc->allocate();
  t->reset(parent, static_cast<std::uint16_t>(w.id));
  if (parent != nullptr && parent->group != nullptr) {
    t->group = parent->group;
    t->group->live.fetch_add(1, std::memory_order_relaxed);
  }
  if (parent != nullptr) {
    // Owner-thread-only increments would be wrong here: any worker running
    // `parent` may spawn concurrently with a sibling finishing, so these
    // two do need RMW. They are on the (uncontended) parent task line, not
    // on a global.
    parent->refs.fetch_add(1, std::memory_order_relaxed);
    parent->active_children.fetch_add(1, std::memory_order_relaxed);
  }
  bump(w.created);
  prof_.thread(w.id).counters.ntasks_created++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_created();
  trace_spawn(w, t);
  return t;
}

Task* Runtime::dispatch(detail::Worker& w, Task* t) {
  // Direct mode: self-push, lomp-style. New work lands in the spawning
  // worker's own master queue; distribution happens pull-side via
  // try_direct_steal. This removes every messaging round trip from the
  // spawn path, which is what closes the gap to lomp when threads are
  // oversubscribed on few cores. Overflow falls through to the standard
  // inline-execution backpressure.
  if (direct_mode()) {
    if (w.redirect_thief >= 0) end_redirect_session(w);  // stale NA-RP
    // Work-first throttle: once the local queue is deep enough to feed
    // every thief's bulk grab, the push/pop round trip buys no extra
    // parallelism — executing the child inline is cheaper and bounds the
    // queue footprint (lomp's depth-first core, with a stealable margin).
    if (xq_.master_size(w.id) >= kDirectInlineDepth) {
      prof_.thread(w.id).counters.ntasks_imm_exec++;
      return t;
    }
    if (xq_.push(w.id, w.id, t)) {
      prof_.thread(w.id).counters.ntasks_static_push++;
      return nullptr;
    }
    Counters& c = prof_.thread(w.id).counters;
    c.ntasks_imm_exec++;
    c.overflow.note(w.active_tenant, xq_.consumer_occupancy(w.id));
    return t;
  }
  // Degraded mode: while any worker is quarantined, stop routing work at
  // it — tasks queued there would sit until a reclaimer migrates them.
  const bool degraded =
      guard_enabled_ && num_quarantined_.load(std::memory_order_relaxed) > 0;
  // NA-RP: a victim with an open redirect session sends new tasks to the
  // thief instead of its static target (Alg. 3).
  if (w.redirect_thief >= 0) {
    if (degraded &&
        worker_health(w.redirect_thief) == WorkerHealth::kQuarantined) {
      // The redirect target went silent mid-session: stop feeding it and
      // fall through to the static balancer.
      end_redirect_session(w);
    } else if (xq_.push(w.id, w.redirect_thief, t)) {
      ++w.redirect_pushed;
      Counters& c = prof_.thread(w.id).counters;
      if (topo_.local(w.id, w.redirect_thief))
        c.nsteal_local++;
      else
        c.nsteal_remote++;
      if (w.redirect_pushed >=
          static_cast<std::uint32_t>(effective_dlb(w).n_steal))
        end_redirect_session(w);
      return nullptr;
    } else {
      // Thief queue full: the session ends (isTargetQFull branch of
      // Alg. 3) and this task falls through to the static balancer.
      prof_.thread(w.id).counters.nreq_target_full++;
      end_redirect_session(w);
    }
  }

  // Static round-robin over all workers, starting with the master queue
  // (§II-B). A full target queue means the task runs immediately.
  int target = static_cast<int>(
      w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
  ++w.rr_cursor;
  if (degraded) {
    // Advance past quarantined targets (self is always acceptable: we are
    // clearly alive). Bounded probe so a mostly-quarantined team still
    // terminates; the final fallback is our own master queue.
    for (int probes = 1;
         probes < cfg_.num_threads && target != w.id &&
         worker_health(target) == WorkerHealth::kQuarantined;
         ++probes) {
      target = static_cast<int>(
          w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
      ++w.rr_cursor;
    }
    if (target != w.id &&
        worker_health(target) == WorkerHealth::kQuarantined)
      target = w.id;
  }
  if (xq_.push(w.id, target, t)) {
    prof_.thread(w.id).counters.ntasks_static_push++;
    return nullptr;
  }
  // Explicit backpressure (§II-B): every queue this producer could use is
  // full, so the task runs inline on the spawning worker — bounding queue
  // memory and recursion depth instead of failing. Attribute the event to
  // the worker's active tenant and the depth of the row that refused it.
  Counters& c = prof_.thread(w.id).counters;
  c.ntasks_imm_exec++;
  c.overflow.note(w.active_tenant, xq_.consumer_occupancy(target));
  return t;
}

void Runtime::dispatch_batch(detail::Worker& w, Task* const* ts,
                             std::size_t n) {
  Counters& c = prof_.thread(w.id).counters;
  std::size_t done = 0;
  int last_target = w.id;
  if (cfg_.num_threads > 1) {
    const bool degraded =
        guard_enabled_ &&
        num_quarantined_.load(std::memory_order_relaxed) > 0;
    // Remote-first: spread chunks over the other workers, which are
    // guaranteed to be polling their rows. The caller may be a producer
    // that never pops its own queue (the serve drain loop), so work must
    // not land at q[w][w]. Chunk size targets an even split per rotation.
    const std::size_t chunk = std::max<std::size_t>(
        1, n / static_cast<std::size_t>(cfg_.num_threads - 1));
    bool progress = true;
    while (done < n && progress) {
      progress = false;
      for (int i = 0; i < cfg_.num_threads && done < n; ++i) {
        const int target = static_cast<int>(
            w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
        ++w.rr_cursor;
        if (target == w.id) continue;
        if (degraded &&
            worker_health(target) == WorkerHealth::kQuarantined)
          continue;
        last_target = target;
        const std::size_t want = chunk < n - done ? chunk : n - done;
        const std::size_t k = xq_.push_batch(w.id, target, ts + done, want);
        if (k > 0) {
          c.ntasks_static_push += k;
          done += k;
          progress = true;
        }
      }
    }
  }
  // Every usable queue is full (or there is no other worker): the
  // remainder runs inline — the standard overflow backpressure path.
  for (; done < n; ++done) {
    c.ntasks_imm_exec++;
    c.overflow.note(w.active_tenant, xq_.consumer_occupancy(last_target));
    execute(w, ts[done]);
  }
}

void Runtime::execute(detail::Worker& w, Task* t) {
  t->executor = static_cast<std::uint16_t>(w.id);
  {
    Counters& c = prof_.thread(w.id).counters;
    if (t->creator == w.id)
      c.ntasks_self++;
    else if (topo_.local(w.id, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  // Task boundary: bump the heartbeat and publish the in-task phase hint
  // (tasks nest via inline execution, so save/restore, not set/clear).
  std::uint32_t prev_phase = hb::kPhaseScheduler;
  if (hb_enabled_) {
    hb_bump(w);
    prev_phase = w.hb_phase.load(std::memory_order_relaxed);
    w.hb_phase.store(hb::kPhaseInTask, std::memory_order_release);
    // Chaos hook: wedge inside a "task body" — the stuck-in-task flavor
    // of kWorkerStall (and kWorkerSlow's shorter nap).
    if (fault_injector() != nullptr) maybe_inject_stall(w);
  }
  const bool sample = cfg_.dlb == DlbKind::kAdaptive &&
                      (w.sample_tick++ & 15u) == 0;
  const std::uint64_t t0 = sample ? rdtscp() : 0;
  if (tracer_raw_ != nullptr) tracer_raw_->on_exec_begin(w.id, t, rdtscp());
  {
    ScopedEvent ev(prof_.thread(w.id), EventKind::kTask);
    // A task dequeued from a cancelled extent is drained, not run: the
    // invoke thunk destroys the payload but skips the body, and the full
    // completion protocol below still executes so counters, census, group
    // and reference counts stay exact.
    const bool skip = task_cancelled(t);
    if (skip) prof_.thread(w.id).counters.ntasks_cancelled++;
    TaskContext ctx(this, &w, t, skip);
    try {
      t->invoke(t, ctx, skip);
    } catch (...) {
      // First-exception-wins into the task's own slot; finish() escalates
      // it to the nearest consumer once the task completes.
      t->err.try_store(std::current_exception());
      prof_.thread(w.id).counters.nexceptions++;
    }
    if (ctx.dep_scope_) {
      // Tear down the dependence scope: return the address-map's task
      // references. Children themselves stay tracked via active_children.
      // Must run even after a throw, or deferred successors would leak
      // and their predecessors' refs never drop.
      std::vector<Task*> refs;
      ctx.dep_scope_->close(&refs);
      for (Task* r : refs) deref(w, r);
    }
  }
  if (sample) {
    // Includes nested child executions when the body ran some inline;
    // still a usable size-class signal (and monotone with task size).
    const std::uint64_t dt = rdtscp() - t0;
    w.avg_task_cycles =
        w.avg_task_cycles == 0 ? dt
                               : w.avg_task_cycles + (dt - w.avg_task_cycles) / 8;
  }
  if (hb_enabled_) {
    w.hb_phase.store(prev_phase, std::memory_order_release);
    hb_bump(w);  // task boundary: body completed
  }
  if (tracer_raw_ != nullptr) tracer_raw_->on_exec_end(w.id, rdtscp());
  finish(w, t);
}

void Runtime::finish(detail::Worker& w, Task* t) {
  Task* parent = t->parent;
  TaskGroup* group = t->group;
  bump(w.executed);
  prof_.thread(w.id).counters.ntasks_executed++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_finished();
  // Release dependent successors whose last predecessor this was; they
  // enter the normal dispatch path on this worker. This must run even when
  // the task failed — a cancelled successor is drained, never stranded.
  if (t->dep_state != nullptr) {
    std::vector<Task*> ready;
    detail::collect_ready_successors(t, &ready);
    for (Task* succ : ready) {
      if (Task* overflow = dispatch(w, succ)) execute(w, overflow);
    }
  }
  // Escalate a pending exception *now*, while our reference on the parent
  // still pins it: the parent's slot is rethrown at its next taskwait, the
  // group's when taskgroup() returns, the region's from run(). Ordered
  // before the active_children/group decrements below so a waiter that
  // observes the drained count also observes the stored exception.
  if (t->err.pending()) {
    if (std::exception_ptr ep = t->err.take())
      propagate_error(std::move(ep), parent, group);
  }
  deref(w, t);
  if (parent != nullptr) {
    // Release so the waiting parent's acquire load sees this child's
    // side effects once the count hits zero.
    parent->active_children.fetch_sub(1, std::memory_order_release);
    deref(w, parent);
  }
  // Group membership is released last so group_wait's zero implies every
  // member's effects (release/acquire pair with the waiting loop).
  if (group != nullptr) group->live.fetch_sub(1, std::memory_order_release);
}

void Runtime::deref(detail::Worker& w, Task* t) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // A fire-and-forget child that completed *after* this task's own
    // finish() may have escalated into our slot too late for anyone to
    // rethrow it; recover it here, at the last point the descriptor is
    // live. The parent pointer is unusable now (it may itself be
    // recycled), but the group is pinned: the child's deref of its parent
    // precedes the child's group-live decrement, so group_wait cannot
    // have returned yet.
    if (t->err.pending()) {
      if (std::exception_ptr ep = t->err.take())
        propagate_error(std::move(ep), nullptr, t->group);
    }
    delete t->dep_state;  // safe: no edges can target a fully-released task
    t->dep_state = nullptr;
    w.alloc->release(t);
  }
}

// --------------------------------------------------------------------------
// Scheduling.

Task* Runtime::find_task(detail::Worker& w) {
  // Worker 0 drives the per-epoch mode evaluation from here: find_task is
  // on every scheduling loop (worker_loop, taskwait, group_wait), so the
  // controller keeps observing even while the team is busy.
  if (adaptive_dispatch_ && w.id == 0) maybe_eval_mode(w);
  // The pop consumes our XQueue row and victim_check may publish census
  // state, so both run under our consumer guard. A failed acquisition
  // means the monitor, a reclaimer, or a direct-mode thief owns our
  // identity right now — report "no work" and retry on the next poll.
  if (!acquire_guard(w)) return nullptr;
  Task* t = xq_.pop(w.id);
  if (t != nullptr) {
    w.idle_polls = 0;
    if (w.request_round_open) {
      // Work arrived while a steal round was in flight: close the
      // latency probe opened at the round's first request send.
      w.request_round_open = false;
      if (w.round_open_tsc != 0) {
        prof_.thread(w.id).counters.note_steal_latency(rdtscp() -
                                                       w.round_open_tsc);
        w.round_open_tsc = 0;
      }
    }
    if (w.idle_enter_tsc != 0) {
      // Idle episode ends at the first successful pop.
      const std::uint64_t now = rdtscp();
      prof_.thread(w.id).counters.idle_cycles += now - w.idle_enter_tsc;
      if (tracer_raw_ != nullptr)
        tracer_raw_->on_idle(w.id, w.idle_enter_tsc, now);
      w.idle_enter_tsc = 0;
    }
    w.backoff.reset();
    if (cfg_.dlb != DlbKind::kNone) victim_check(w);
  }
  release_guard(w);
  return t;
}

void Runtime::idle_step(detail::Worker& w) {
  // Chaos hook: spurious wakeup — an extra yield/pause in the idle loop,
  // modelling an OS preemption right where the thief/victim protocol and
  // the barrier polling interleave. kWorkerStall/kWorkerSlow ride the same
  // hook for the "descheduled mid-poll" flavor of going silent.
  if (FaultInjector* fi = fault_injector()) {
    fi->perturb(FaultPoint::kIdleWakeup);
    if (hb_enabled_) maybe_inject_stall(w);
  }
  hb_bump(w);  // idle-poll liveness
  if (w.idle_enter_tsc == 0) w.idle_enter_tsc = rdtscp();  // episode start
  // Recovery duty: drain quarantined workers' rows. Runs *outside* our own
  // guard — it takes the victim's guard (monitor -> reclaimer), and the
  // push side of the migration is producer-only.
  if (guard_enabled_ &&
      num_quarantined_.load(std::memory_order_relaxed) > 0 &&
      try_reclaim(w))
    return;  // reclaimed work is queued locally; next find_task eats it
  const bool direct = direct_mode();
  if (acquire_guard(w)) {
    // A victim that went idle mid-redirect flushes the session: it has no
    // more spawns to redirect, so it re-opens itself to new requests.
    if (w.redirect_thief >= 0) end_redirect_session(w);

    if (cfg_.dlb != DlbKind::kNone && cfg_.num_threads > 1) {
      if (!direct) {
        if (!w.request_round_open) {
          thief_send_requests(w);
          w.request_round_open = true;
          w.idle_polls = 0;
        } else if (++w.idle_polls >= effective_dlb(w).t_interval) {
          // Timeout (§IV-B): request lost/overwritten or victim idle —
          // retry.
          thief_send_requests(w);
          w.idle_polls = 0;
        }
      }
      // Even an idle worker can be a victim of redirected pushes building
      // up work for it, and — for NA-WS — of batch migration; it must keep
      // handling requests so two mutually-idle workers cannot livelock on
      // unanswered cells. Direct mode keeps this too: requests parked by a
      // thief in a messaging epoch must still be answered after a switch,
      // or its round (and its latency probe) would dangle forever.
      victim_check(w);
    }
    release_guard(w);
  }  // else quarantined/borrowed: skip DLB duties, keep the backoff walking
  // Direct-mode pull: steal straight from an occupied row, outside our own
  // guard (we hold the *victim's* guard as a thief, never both at once).
  if (direct && cfg_.num_threads > 1 && try_direct_steal(w)) return;
  // Adaptive spin → pause → yield escalation; every waiting loop funnels
  // through here so the whole runtime shares one backoff policy.
  if (w.backoff.step(cfg_.yield_after_idle))
    prof_.thread(w.id).counters.nidle_yields++;
}

void Runtime::worker_loop(detail::Worker& w, std::uint64_t gen) {
  bool arrived = false;
  std::uint64_t stall_start = 0;
  ThreadProfile& prof = prof_.thread(w.id);

  // Fresh region: a steal round or idle episode left open across the
  // previous region's barrier would otherwise close against this region's
  // clock and record a nonsense latency.
  w.request_round_open = false;
  w.round_open_tsc = 0;
  w.idle_enter_tsc = 0;

  if (hb_enabled_) {
    // Fresh region: new injection budget, unparked phase, and an initial
    // bump so a worker quarantined while parked at the previous region's
    // end is observed moving (readmission) right away.
    w.stall_injected = false;
    w.slow_injected = false;
    hb_set_phase(w, hb::kPhaseScheduler);
    hb_bump(w);
  }

  for (;;) {
    if (Task* t = find_task(w)) {
      if (stall_start != 0) {
        prof.record(EventKind::kStall, stall_start, rdtscp());
        stall_start = 0;
      }
      execute(w, t);
      continue;
    }
    if (stall_start == 0 && prof_.events_enabled()) stall_start = rdtscp();
    idle_step(w);  // DLB duties + adaptive spin/pause/yield backoff

    bool released = false;
    if (cfg_.barrier == BarrierKind::kCentral) {
      if (!arrived) {
        if (guard_enabled_) {
          // Arrival is guarded: the monitor may already have arrived on
          // our behalf (proxied_gen), and exactly one of us must count.
          if (acquire_guard(w)) {
            if (w.proxied_gen.load(std::memory_order_relaxed) >= gen) {
              arrived = true;  // the monitor arrived for us this region
            } else {
              w.arrived_gen.store(gen, std::memory_order_relaxed);
              central_.arrive(gen);
              arrived = true;
            }
            release_guard(w);
          }
        } else {
          central_.arrive(gen);
          arrived = true;
        }
      }
      if (arrived) released = central_.poll(gen);
    } else if (acquire_guard(w)) {
      // Census publication is a consumer-identity step: the monitor proxies
      // it for quarantined workers, so the two must never interleave.
      released = tree_.poll(w.id, w.created.load(std::memory_order_relaxed),
                            w.executed.load(std::memory_order_relaxed), gen);
      release_guard(w);
    }
    if (released) {
      if (stall_start != 0)
        prof.record(EventKind::kStall, stall_start, rdtscp());
      if (w.idle_enter_tsc != 0) {
        const std::uint64_t now = rdtscp();
        prof.counters.idle_cycles += now - w.idle_enter_tsc;
        if (tracer_raw_ != nullptr)
          tracer_raw_->on_idle(w.id, w.idle_enter_tsc, now);
        w.idle_enter_tsc = 0;
      }
      sync_owner_stats(w);
      hb_set_phase(w, hb::kPhaseParked);
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Dynamic load balancing.

DlbConfig Runtime::effective_dlb(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb_cfg;
  // Table IV guideline rows, keyed by this worker's sampled task size.
  const std::uint64_t s = w.avg_task_cycles;
  if (s == 0 || s < 100) return {1, 2, 10'000, 1.0};
  if (s < 1'000) return {4, 16, 10'000, 1.0};
  if (s < 10'000) return {8, 32, 10'000, 0.5};
  return {24, 32, 1'000, 0.08};  // RP row (Table IV: P_local 3-12%)
}

DlbKind Runtime::effective_strategy(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb;
  return w.avg_task_cycles >= 10'000 ? DlbKind::kRedirectPush
                                     : DlbKind::kWorkSteal;
}

void Runtime::thief_send_requests(detail::Worker& w) {
  Counters& c = prof_.thread(w.id).counters;
  const DlbConfig dc = effective_dlb(w);
  const bool degraded =
      guard_enabled_ && num_quarantined_.load(std::memory_order_relaxed) > 0;
  c.nsteal_rounds++;
  // Open the steal-round latency probe at the round's first send; it
  // closes at the next successful pop (find_task). Retries extend the
  // same round rather than restarting the clock.
  if (w.round_open_tsc == 0) w.round_open_tsc = rdtscp();
  // Bitmap-biased victim selection: when the occupancy bitmap shows work
  // somewhere, draw victims from the occupied set directly instead of
  // probing blind — a request sent to an empty victim costs a full
  // T_interval timeout. Falls back to the blind pick when nothing is
  // visibly occupied (a victim may be about to publish) or the team does
  // not fit the 64-bit mask.
  const std::uint64_t occupied =
      cfg_.num_threads <= 64
          ? xq_.occupied_mask() & ~(1ull << static_cast<unsigned>(w.id))
          : 0;
  for (int i = 0; i < dc.n_victim; ++i) {
    const int v =
        occupied != 0
            ? pick_victim_masked(w.id, dc.p_local, w.rng, occupied,
                                 w.local_mask)
            : pick_victim(topo_, w.id, dc.p_local, w.rng);
    if (v < 0) return;
    // A quarantined victim cannot answer; its queued work is drained by
    // the reclamation path instead of the request/response protocol.
    if (degraded && worker_health(v) == WorkerHealth::kQuarantined) continue;
    if (workers_[static_cast<std::size_t>(v)]->cells.try_request(w.id))
      c.nreq_sent++;
  }
}

void Runtime::victim_check(detail::Worker& w) {
  if (w.redirect_thief >= 0) return;  // NA-RP session in progress
  const int thief = w.cells.poll_request();
  if (thief < 0 || thief == w.id) return;
  if (guard_enabled_ &&
      num_quarantined_.load(std::memory_order_relaxed) > 0 &&
      worker_health(thief) == WorkerHealth::kQuarantined) {
    // Stale request from a worker quarantined after sending it: don't open
    // a session toward (or migrate work to) a queue nobody is consuming.
    w.cells.complete_round();
    return;
  }
  Counters& c = prof_.thread(w.id).counters;
  c.nreq_handled++;
  if (effective_strategy(w) == DlbKind::kRedirectPush) {
    // Open a redirect session (Alg. 3); the round completes when the
    // session ends so only one redirect target is active at a time.
    w.redirect_thief = thief;
    w.redirect_pushed = 0;
  } else {
    do_work_steal(w, thief);
    w.cells.complete_round();
  }
}

void Runtime::do_work_steal(detail::Worker& w, int thief) {
  // Alg. 4, batched: drain up to n_steal tasks from our own row with one
  // counter probe (pop_batch), then hand them over with one batched push —
  // one acquire/release pair per batch instead of per task. Every hop
  // stays SPSC-legal: we consume our row and produce into q[thief][w].
  Counters& c = prof_.thread(w.id).counters;
  constexpr std::size_t kMaxMigrate = 64;
  Task* batch[kMaxMigrate];
  const std::size_t n_steal =
      static_cast<std::size_t>(effective_dlb(w).n_steal);
  const std::size_t want = n_steal < kMaxMigrate ? n_steal : kMaxMigrate;
  const std::size_t got = xq_.pop_batch(w.id, batch, want);
  if (got == 0) {
    c.nreq_src_empty++;
    return;
  }
  const std::size_t moved = xq_.push_batch(w.id, thief, batch, got);
  if (moved < got) {
    // Thief queue full: keep the leftovers. Our master queue may itself be
    // full, in which case the task runs right here (standard overflow).
    c.nreq_target_full++;
    for (std::size_t i = moved; i < got; ++i) {
      if (!xq_.push(w.id, w.id, batch[i])) {
        c.ntasks_imm_exec++;
        c.overflow.note(w.active_tenant, xq_.consumer_occupancy(w.id));
        execute(w, batch[i]);
      }
    }
  }
  if (moved > 0) {
    c.nreq_has_steal++;
    if (topo_.local(w.id, thief))
      c.nsteal_local += moved;
    else
      c.nsteal_remote += moved;
    if (tracer_raw_ != nullptr)
      tracer_raw_->on_steal(w.id, thief, moved, /*direct=*/false, rdtscp());
  }
}

void Runtime::end_redirect_session(detail::Worker& w) {
  if (w.redirect_thief < 0) return;
  if (w.redirect_pushed > 0)
    prof_.thread(w.id).counters.nreq_has_steal++;
  else
    prof_.thread(w.id).counters.nreq_src_empty++;
  w.redirect_thief = -1;
  w.redirect_pushed = 0;
  w.cells.complete_round();
}

// --------------------------------------------------------------------------
// Adaptive dispatch (dlb=adaptive): per-team mode controller + direct steal.
// (See adaptive.hpp for the state machine and DESIGN.md "Adaptive dispatch
// & occupancy bitmap" for the protocol argument.)

void Runtime::maybe_eval_mode(detail::Worker& w) noexcept {
  if (cfg_.dispatch_mode != DispatchModePolicy::kAuto) return;  // pinned
  // Two-stage throttle: a cheap tick divider keeps rdtscp off the common
  // path, the epoch clock keeps the census (O(N) popcounts) rare.
  if ((++mode_tick_ & (kModeEvalTicks - 1)) != 0) return;
  const std::uint64_t now = rdtscp();
  if (now < next_mode_eval_) return;
  next_mode_eval_ = now + kModeEpochCycles;
  const XQueue::Census census = xq_.census();
  ModeSignals s;
  s.occupied_queues = census.occupied_queues;
  s.queued_tasks = census.queued;
  s.healthy_workers = healthy_workers();
  s.zones = topo_.num_zones();
  const DispatchMode next = mode_ctl_.observe(s);
  if (next != static_cast<DispatchMode>(
                  mode_.load(std::memory_order_relaxed))) {
    mode_.store(static_cast<std::uint32_t>(next), std::memory_order_release);
    mode_switches_pub_.fetch_add(1, std::memory_order_relaxed);
    prof_.thread(w.id).counters.nmode_switches++;
  }
}

bool Runtime::try_direct_steal(detail::Worker& w) {
  // Deque-style pull: find an occupied row via the bitmap mask, borrow the
  // victim's consumer identity (free -> thief), drain a batch, requeue it
  // at home. A quarantined victim is skipped automatically — its guard is
  // monitor-held, so try_borrow_thief fails. We never hold our own guard
  // here, so thief -> victim is the only guard edge and cannot cycle.
  Counters& c = prof_.thread(w.id).counters;
  const DlbConfig dc = effective_dlb(w);
  constexpr std::size_t kMaxMigrate = 64;
  constexpr int kAttempts = 2;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    int v = -1;
    if (cfg_.num_threads <= 64) {
      const std::uint64_t occupied =
          xq_.occupied_mask() & ~(1ull << static_cast<unsigned>(w.id));
      if (occupied == 0) return false;  // nothing visibly queued anywhere
      v = pick_victim_masked(w.id, dc.p_local, w.rng, occupied,
                             w.local_mask);
    } else {
      v = pick_victim(topo_, w.id, dc.p_local, w.rng);
    }
    if (v < 0) return false;
    detail::Worker& vic = *workers_[static_cast<std::size_t>(v)];
    if (!vic.guard.try_borrow_thief())
      continue;  // victim busy consuming, quarantined, or already robbed
    // Steal-half, capped: draining a small victim to zero just ping-pongs
    // the work back when it spawns again — leave it half its queue.
    const std::uint64_t visible = xq_.master_size(v);
    const std::size_t want = std::clamp<std::uint64_t>(
        visible / 2, 1, kMaxMigrate);
    Task* batch[kMaxMigrate];
    const std::size_t got = xq_.pop_batch(v, batch, want);
    vic.guard.return_thief();
    if (got == 0) continue;  // raced with the victim's own pops
    c.nsteal_direct += got;
    if (tracer_raw_ != nullptr)
      tracer_raw_->on_steal(w.id, v, got, /*direct=*/true, rdtscp());
    if (topo_.local(w.id, v))
      c.nsteal_local += got;
    else
      c.nsteal_remote += got;
    // First task runs immediately; the rest land in our master queue
    // (SPSC-legal: we are q[w][w]'s producer). Overflow runs inline.
    const std::size_t moved =
        got > 1 ? xq_.push_batch(w.id, w.id, batch + 1, got - 1) + 1 : 1;
    for (std::size_t i = moved; i < got; ++i) {
      c.ntasks_imm_exec++;
      c.overflow.note(w.active_tenant, xq_.consumer_occupancy(w.id));
      execute(w, batch[i]);
    }
    execute(w, batch[0]);
    return true;
  }
  return false;
}

void Runtime::sync_owner_stats(detail::Worker& w) noexcept {
  Counters& c = prof_.thread(w.id).counters;
  // Allocator churn is strictly owner-private: always safe to read.
  c.nalloc_refills = w.alloc->refills();
  c.nalloc_spills = w.alloc->spills();
  c.alloc_refill_cycles = w.alloc->refill_cycles();
  // XQueue scan stats live in consumer-identity state, which a straggling
  // thief or reclaimer may still be writing — read them under our guard.
  // All values are lifetime-cumulative and single-writer, so assignment
  // (not +=) is exact; a worker still quarantined at region end simply
  // syncs on a later region.
  if (!guards_active_) {
    const XQueue::ScanStats ss = xq_.scan_stats(w.id);
    c.nqueue_fullscans = ss.full_scans;
    c.nqueue_zeroskips = ss.zero_skips;
  } else if (acquire_guard(w)) {
    const XQueue::ScanStats ss = xq_.scan_stats(w.id);
    c.nqueue_fullscans = ss.full_scans;
    c.nqueue_zeroskips = ss.zero_skips;
    release_guard(w);
  }
}

void Runtime::group_wait(detail::Worker& w, TaskGroup& group) {
  trace_pause(w);  // wait polling is not the enclosing task's own work
  while (group.live.load(std::memory_order_acquire) != 0) {
    if (Task* other = find_task(w)) {
      execute(w, other);
      continue;
    }
    idle_step(w);  // shared backoff policy lives there
  }
  trace_resume(w);
}

// --------------------------------------------------------------------------
// Fault tolerance.

bool Runtime::task_cancelled(const Task* t) const noexcept {
  if (region_cancel_.load(std::memory_order_relaxed)) return true;
  return t != nullptr && t->group != nullptr &&
         t->group->cancelled.load(std::memory_order_relaxed);
}

void Runtime::propagate_error(std::exception_ptr ep, Task* parent,
                              TaskGroup* group) noexcept {
  // Nearest consumer first: the parent's own slot — but only when the
  // parent shares the group extent. Across a taskgroup boundary the group
  // must observe the failure directly, or a parent that never taskwaits
  // again would swallow it. Storing into the parent does NOT cancel
  // anything: the parent may catch at its next taskwait and recover.
  if (parent != nullptr && parent->group == group) {
    parent->err.try_store(std::move(ep));  // loser is dropped: first wins
    return;
  }
  if (group != nullptr) {
    // Terminal for the group: cancel the remaining members and latch the
    // exception for the taskgroup() caller.
    group->cancelled.store(true, std::memory_order_relaxed);
    group->err.try_store(std::move(ep));
    return;
  }
  // No enclosing consumer: region scope. Cancel the rest of the region so
  // run() returns promptly, then rethrows from the region slot.
  region_cancel_.store(true, std::memory_order_relaxed);
  region_err_.try_store(std::move(ep));
}

void Runtime::start_watchdog() {
  if (cfg_.watchdog_timeout_ms == 0) return;
  Watchdog::Hooks hooks;
  hooks.timeout_ms = cfg_.watchdog_timeout_ms;
  hooks.progress = [this]() noexcept {
    // Monotone: lifetime created+executed over the team. Any scheduled
    // task moves it; a wedged region leaves it frozen.
    std::uint64_t sig = 0;
    for (const auto& w : workers_)
      sig += w->created.load(std::memory_order_relaxed) +
             w->executed.load(std::memory_order_relaxed);
    return sig;
  };
  hooks.active = [this]() noexcept {
    return region_active_.load(std::memory_order_relaxed);
  };
  hooks.on_stall = [this] {
    const std::string snap = debug_snapshot();
    if (cfg_.watchdog_handler) {
      cfg_.watchdog_handler(snap);
      return;
    }
    std::fprintf(stderr,
                 "[xtask] watchdog: no scheduler progress for %llu ms; "
                 "aborting\n%s",
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms),
                 snap.c_str());
    std::abort();
  };
  watchdog_.start(std::move(hooks));
}

// --------------------------------------------------------------------------
// Self-healing: heartbeat monitor, quarantine, reclamation, readmission.
// (See heartbeat.hpp for the guard hand-off diagram and DESIGN.md
// "Heartbeats, quarantine, and readmission" for the full protocol.)

bool Runtime::acquire_guard(detail::Worker& w) noexcept {
  // guards_active_ ⊇ guard_enabled_: direct-mode thieves borrow consumer
  // identities through the same cell, so the guard must cover every row
  // consumption whenever that is possible — even with quarantine off.
  if (!guards_active_) return true;
  if (!w.guard.try_acquire_owner()) {
    // Quarantined or borrowed (monitor, reclaimer, or a direct-mode
    // thief owns our identity right now). Bumping the heartbeat here is
    // what earns readmission in the quarantine case.
    hb_bump(w);
    cpu_pause();
    return false;
  }
  if (guard_enabled_ && w.guard.owner_depth() == 1 &&
      w.was_quarantined.load(std::memory_order_relaxed)) {
    // First acquisition after a readmission: attribute the episode to our
    // own (single-writer) profiler counters.
    w.was_quarantined.store(false, std::memory_order_relaxed);
    Counters& c = prof_.thread(w.id).counters;
    c.nquarantined++;
    c.nreadmitted++;
  }
  return true;
}

bool Runtime::try_reclaim(detail::Worker& w) {
  // Drain quarantined workers' pending rows through the batched-steal path
  // (same pop_batch/push_batch pair as NA-WS), acting as a surrogate
  // consumer under the victim's guard: monitor -> reclaimer -> monitor.
  constexpr std::size_t kMaxReclaim = 64;
  bool any = false;
  for (int v = 0; v < cfg_.num_threads; ++v) {
    if (v == w.id) continue;
    detail::Worker& vic = *workers_[static_cast<std::size_t>(v)];
    if (vic.health.load(std::memory_order_acquire) !=
        static_cast<std::uint32_t>(WorkerHealth::kQuarantined))
      continue;
    if (!vic.guard.try_borrow_reclaimer())
      continue;  // another reclaimer won, or the victim was just readmitted
    Task* batch[kMaxReclaim];
    const std::size_t got = xq_.pop_batch(v, batch, kMaxReclaim);
    vic.guard.return_reclaimer();
    if (got == 0) continue;
    any = true;
    Counters& c = prof_.thread(w.id).counters;
    c.nreclaimed += got;
    hb_tasks_reclaimed_.fetch_add(got, std::memory_order_relaxed);
    // Requeue into our own master queue — SPSC-legal (we are q[w][w]'s
    // producer) and guard-free. Overflow runs inline, the standard
    // backpressure path.
    const std::size_t moved = xq_.push_batch(w.id, w.id, batch, got);
    for (std::size_t i = moved; i < got; ++i) {
      c.ntasks_imm_exec++;
      c.overflow.note(w.active_tenant, xq_.consumer_occupancy(w.id));
      execute(w, batch[i]);
    }
  }
  return any;
}

void Runtime::maybe_inject_stall(detail::Worker& w) {
  FaultInjector* fi = fault_injector();
  if (fi == nullptr) return;
  // Never go silent while holding our own guard: a real wedged worker is
  // off-guard by construction (the guard is not held across task bodies),
  // and a guarded sleeper could not be quarantined at all.
  if (w.guard.owner_depth() > 0) return;
  if (guard_enabled_ && !w.stall_injected &&
      fi->inject(FaultPoint::kWorkerStall)) {
    // Full stall: freeze the heartbeat until the monitor quarantines us,
    // then linger so peers observe degraded mode, reclaim our rows, and
    // the barrier gets proxied — proving end-to-end recovery.
    w.stall_injected = true;
    const auto quarantined =
        static_cast<std::uint32_t>(WorkerHealth::kQuarantined);
    for (int spins = 0;
         w.health.load(std::memory_order_acquire) != quarantined &&
         spins < 50'000;
         ++spins)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(2 * cfg_.heartbeat_ms + 1));
    return;
  }
  if (!w.slow_injected && fi->inject(FaultPoint::kWorkerSlow)) {
    // Brief stall: silent just long enough to be suspected, then resume —
    // drives healthy -> suspect -> healthy with no scheduling side effects.
    w.slow_injected = true;
    const auto healthy = static_cast<std::uint32_t>(WorkerHealth::kHealthy);
    for (int spins = 0;
         w.health.load(std::memory_order_acquire) == healthy &&
         spins < 10'000;
         ++spins)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Runtime::monitor_main() {
  // Sample a few times per heartbeat window so one lost sample cannot
  // cost a whole window, but clamp the tick so tiny windows do not spin.
  const std::uint64_t tick_ms =
      std::clamp<std::uint64_t>(cfg_.heartbeat_ms / 4, 1, 100);
  const std::uint64_t window_ticks =
      std::max<std::uint64_t>(1, (cfg_.heartbeat_ms + tick_ms - 1) / tick_ms);
  // Frozen for ~one window: suspect. Another window: quarantine-eligible.
  std::vector<HealthTracker> track(
      workers_.size(), HealthTracker(window_ticks, window_ticks));

  std::unique_lock<std::mutex> lock(monitor_mu_);
  for (;;) {
    monitor_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                         [&] { return monitor_stop_; });
    if (monitor_stop_) return;
    lock.unlock();

    const bool active = region_active_.load(std::memory_order_acquire);
    const std::uint64_t gen = gen_pub_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      detail::Worker& w = *workers_[i];
      const std::uint64_t beat = w.heartbeat.load(std::memory_order_acquire);
      const std::uint32_t phase = w.hb_phase.load(std::memory_order_acquire);
      const bool schedulable = active && phase != hb::kPhaseParked;
      switch (track[i].observe(beat, schedulable)) {
        case HealthTracker::Verdict::kNone:
          break;
        case HealthTracker::Verdict::kBecameSuspect:
          hb_suspects_.fetch_add(1, std::memory_order_relaxed);
          w.health.store(static_cast<std::uint32_t>(WorkerHealth::kSuspect),
                         std::memory_order_release);
          break;
        case HealthTracker::Verdict::kSuspectCleared:
          w.health.store(static_cast<std::uint32_t>(WorkerHealth::kHealthy),
                         std::memory_order_release);
          break;
        case HealthTracker::Verdict::kQuarantineEligible: {
          if (!guard_enabled_) break;  // detection-only mode
          // Linearization point of quarantine: winning the worker's guard
          // (free -> monitor). From here until readmission the monitor —
          // not the worker — is the consumer identity; publishing health
          // *after* the CAS means peers acting on kQuarantined always see
          // a guard already out of the worker's hands.
          if (w.guard.try_quarantine()) {
            const bool in_task = phase == hb::kPhaseInTask;
            track[i].commit_quarantine(in_task);
            w.was_quarantined.store(true, std::memory_order_relaxed);
            w.health.store(
                static_cast<std::uint32_t>(WorkerHealth::kQuarantined),
                std::memory_order_release);
            num_quarantined_.fetch_add(1, std::memory_order_relaxed);
            hb_quarantines_.fetch_add(1, std::memory_order_relaxed);
            (in_task ? hb_quarantines_in_task_ : hb_quarantines_desched_)
                .fetch_add(1, std::memory_order_relaxed);
          }
          // CAS failure: the worker held its guard at the sample point —
          // it is alive inside the scheduler; the verdict re-fires next
          // tick if the heartbeat stays frozen.
          break;
        }
        case HealthTracker::Verdict::kHeartbeatResumed: {
          // Linearization point of readmission: handing the guard back
          // (monitor -> free). Fails while a reclaimer borrows the guard;
          // the verdict re-fires next tick.
          if (w.guard.try_readmit()) {
            track[i].commit_readmit();
            w.health.store(
                static_cast<std::uint32_t>(WorkerHealth::kHealthy),
                std::memory_order_release);
            num_quarantined_.fetch_sub(1, std::memory_order_relaxed);
            hb_readmissions_.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
      }
      // Proxy duties: keep a quarantined worker's barrier participation
      // alive so the region can still terminate. The monitor holds the
      // guard (reclaimers hand it back between batches), so these are
      // legal surrogate consumer-identity steps.
      if (track[i].health() == WorkerHealth::kQuarantined && active) {
        if (cfg_.barrier == BarrierKind::kTree) {
          // A couple of polls per tick: the census needs report and
          // release passes to make progress through the worker's cells.
          for (int pass = 0; pass < 4; ++pass)
            tree_.poll(w.id, w.created.load(std::memory_order_relaxed),
                       w.executed.load(std::memory_order_relaxed), gen);
        } else if (w.arrived_gen.load(std::memory_order_relaxed) < gen &&
                   w.proxied_gen.load(std::memory_order_relaxed) < gen) {
          w.proxied_gen.store(gen, std::memory_order_relaxed);
          central_.arrive(gen);
        }
      }
    }
    lock.lock();
  }
}

void Runtime::start_monitor() {
  if (!hb_enabled_) return;
  monitor_ = std::thread([this] { monitor_main(); });
}

void Runtime::stop_monitor() {
  if (!monitor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  monitor_.join();
}

HealthStats Runtime::health_stats() const noexcept {
  HealthStats s;
  s.suspects = hb_suspects_.load(std::memory_order_relaxed);
  s.quarantines = hb_quarantines_.load(std::memory_order_relaxed);
  s.quarantines_in_task =
      hb_quarantines_in_task_.load(std::memory_order_relaxed);
  s.quarantines_descheduled =
      hb_quarantines_desched_.load(std::memory_order_relaxed);
  s.readmissions = hb_readmissions_.load(std::memory_order_relaxed);
  s.tasks_reclaimed = hb_tasks_reclaimed_.load(std::memory_order_relaxed);
  return s;
}

std::string Runtime::debug_snapshot() const {
  // Reads only atomics (and immutable config), so any thread may call it
  // while the team runs; values from different cells may be mutually
  // inconsistent, which is fine for a diagnostic dump.
  std::ostringstream os;
  os << "=== xtask runtime snapshot ===\n"
     << "threads=" << cfg_.num_threads << " barrier="
     << (cfg_.barrier == BarrierKind::kCentral ? "central" : "tree")
     << " dlb=" << static_cast<int>(cfg_.dlb)
     << " region_active=" << region_active_.load(std::memory_order_relaxed)
     << " region_cancelled="
     << region_cancel_.load(std::memory_order_relaxed)
     << " region_error=" << region_err_.pending() << '\n';
  if (hb_enabled_)
    os << "health: hb_ms=" << cfg_.heartbeat_ms
       << " quarantine=" << (guard_enabled_ ? "on" : "off")
       << " quarantined_now=" << num_quarantined_.load(std::memory_order_relaxed)
       << " suspects=" << hb_suspects_.load(std::memory_order_relaxed)
       << " quarantines=" << hb_quarantines_.load(std::memory_order_relaxed)
       << " readmissions=" << hb_readmissions_.load(std::memory_order_relaxed)
       << " reclaimed=" << hb_tasks_reclaimed_.load(std::memory_order_relaxed)
       << '\n';
  if (adaptive_dispatch_) {
    const XQueue::Census census = xq_.census();
    os << "adaptive: mode="
       << (mode_.load(std::memory_order_relaxed) ==
                   static_cast<std::uint32_t>(DispatchMode::kDirect)
               ? "direct"
               : "messaging")
       << " switches=" << mode_switches_pub_.load(std::memory_order_relaxed)
       << " occupied=" << census.occupied_queues
       << " queued~=" << census.queued << '\n';
  }
  if (cfg_.barrier == BarrierKind::kCentral)
    os << "central: task_count=" << central_.task_count() << '\n';
  else
    os << "tree: census_passes=" << tree_.passes() << '\n';
  std::uint64_t created = 0;
  std::uint64_t executed = 0;
  for (const auto& w : workers_) {
    const std::uint64_t c = w->created.load(std::memory_order_relaxed);
    const std::uint64_t e = w->executed.load(std::memory_order_relaxed);
    created += c;
    executed += e;
    const std::uint64_t req =
        w->cells.request.load(std::memory_order_relaxed);
    os << "worker " << w->id << ": created=" << c << " executed=" << e
       << " queued~=" << xq_.consumer_occupancy(w->id)
       << " steal_round=" << w->cells.round.load(std::memory_order_relaxed)
       << " steal_req={thief=" << steal::thief_of(req)
       << ",round=" << steal::round_of(req) << "}";
    if (hb_enabled_)
      os << " health=" << w->health.load(std::memory_order_relaxed)
         << " heartbeat=" << w->heartbeat.load(std::memory_order_relaxed)
         << " phase=" << w->hb_phase.load(std::memory_order_relaxed);
    os << '\n';
  }
  os << "totals: created=" << created << " executed=" << executed
     << " in_flight=" << (created - executed) << '\n';
  return os.str();
}

// --------------------------------------------------------------------------
// TaskContext.

bool TaskContext::taskyield() {
  detail::Worker& w = *w_;
  if (Task* t = rt_->find_task(w)) {
    rt_->execute(w, t);
    return true;
  }
  return false;
}

void TaskContext::taskwait() {
  if (current_ == nullptr) return;
  detail::Worker& w = *w_;
  if (current_->active_children.load(std::memory_order_acquire) != 0) {
    ScopedEvent ev(rt_->profiler().thread(w.id), EventKind::kTaskWait);
    // The wait loop (polling + helping) is not this task's own work: stop
    // its trace self-clock so replay re-burns only the body's cycles.
    rt_->trace_pause(w);
    while (current_->active_children.load(std::memory_order_acquire) != 0) {
      if (Task* t = rt_->find_task(w)) {
        rt_->execute(w, t);
        continue;
      }
      rt_->idle_step(w);  // shared backoff policy lives there
    }
    rt_->trace_resume(w);
  }
  // Every child completed, and each escalated into our slot before its
  // active_children decrement (release/acquire pair with the loop above),
  // so no writer can still be in flight. Rethrow the first child failure;
  // the body may catch it and recover — nothing is auto-cancelled here.
  if (current_->err.pending()) {
    if (std::exception_ptr ep = current_->err.take())
      std::rethrow_exception(ep);
  }
}

void TaskContext::cancel_group() noexcept {
  // OpenMP `cancel taskgroup`: innermost enclosing group, or — for tasks
  // outside any group — the whole parallel region.
  if (current_ != nullptr && current_->group != nullptr) {
    current_->group->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  rt_->region_cancel_.store(true, std::memory_order_relaxed);
}

bool TaskContext::cancelled() const noexcept {
  return rt_->task_cancelled(current_);
}

}  // namespace xtask
