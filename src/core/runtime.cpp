#include "core/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace xtask {

namespace {

/// Single-writer counter bump: the owner is the only writer, so a plain
/// load+store (no RMW) is enough — this is the "lock-less" discipline the
/// paper applies to everything outside the XGOMP task count.
inline void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

/// An explicit Topology is the source of truth for machine shape: fold it
/// back into the scalar knobs so every downstream consumer (profiler
/// width, queue matrix, barriers) sees one consistent shape.
Config normalized(Config cfg) {
  if (cfg.topology.num_workers() > 0) {
    cfg.num_threads = cfg.topology.num_workers();
    cfg.numa_zones = cfg.topology.num_zones();
  }
  return cfg;
}

}  // namespace

Runtime::Runtime(Config cfg)
    : cfg_(normalized(std::move(cfg))),
      topo_(cfg_.topology.num_workers() > 0
                ? cfg_.topology
                : cfg_.numa_zones > 0
                      ? Topology::synthetic(cfg_.num_threads, cfg_.numa_zones)
                      : Topology::detect(cfg_.num_threads)),
      prof_(cfg_.num_threads, cfg_.profile_events),
      xq_(cfg_.num_threads, cfg_.queue_capacity),
      central_(cfg_.num_threads),
      tree_(cfg_.num_threads),
      pool_(cfg_.allocator, topo_.num_zones()) {
  XTASK_CHECK(cfg_.num_threads >= 1);
  XTASK_CHECK(cfg_.num_threads <= steal::kMaxWorkerId);
  workers_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int i = 0; i < cfg_.num_threads; ++i) {
    auto w = std::make_unique<detail::Worker>();
    w->id = i;
    w->rt = this;
    w->rng = XorShift(cfg_.seed + static_cast<std::uint64_t>(i) * 0x51ed2701);
    w->rr_cursor = static_cast<std::uint32_t>(i);  // round-robin starts at
                                                   // the master queue
    // Key each worker's allocator to its NUMA zone so recycled descriptors
    // circulate within a socket before crossing the interconnect.
    w->alloc = std::make_unique<TaskAllocator>(pool_, topo_.zone_of(i));
    workers_.push_back(std::move(w));
  }
  for (int i = 1; i < cfg_.num_threads; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { thread_main(i); });
  start_watchdog();
}

Runtime::~Runtime() {
  watchdog_.stop();  // before workers_: its hooks read worker counters
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    shutdown_ = true;
  }
  region_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Workers' allocators return descriptors to pool_ on destruction; destroy
  // them before pool_ goes away.
  workers_.clear();
}

void Runtime::thread_main(int id) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(id)];
  std::uint64_t my_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(region_mu_);
      region_cv_.wait(lock,
                      [&] { return shutdown_ || region_gen_ > my_gen; });
      if (shutdown_ && region_gen_ <= my_gen) return;
      my_gen = region_gen_;
    }
    worker_loop(w, my_gen);
    {
      std::lock_guard<std::mutex> lock(region_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void Runtime::run(std::function<void(TaskContext&)> root) {
  detail::Worker& w0 = *workers_[0];
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    workers_done_ = 0;
    gen = ++region_gen_;
  }
  // Fresh region: clear leftover cancellation/error state. Single-threaded
  // here — the helpers are still parked behind region_cv_.
  region_cancel_.store(false, std::memory_order_relaxed);
  region_err_.reset();
  region_active_.store(true, std::memory_order_release);

  // Create the root task *before* waking the team: its `created` increment
  // is what keeps the tree barrier's census from declaring the region
  // quiescent before the root body has run.
  Task* root_task = allocate_task(w0, nullptr);
  root_task->emplace([fn = std::move(root)](TaskContext& ctx) { fn(ctx); });

  region_cv_.notify_all();

  execute(w0, root_task);
  worker_loop(w0, gen);

  // Wait for the helper workers to observe the release and park again, so
  // a subsequent run() cannot race with stragglers of this region.
  {
    std::unique_lock<std::mutex> lock(region_mu_);
    done_cv_.wait(lock,
                  [&] { return workers_done_ == cfg_.num_threads - 1; });
  }
  region_active_.store(false, std::memory_order_relaxed);

  // The region has fully drained and every helper's effects are ordered
  // before the workers_done_ handshake above, so this read races with
  // nothing. Rethrow the first exception that reached the region boundary.
  if (region_err_.pending()) {
    if (std::exception_ptr ep = region_err_.take()) std::rethrow_exception(ep);
  }
}

// --------------------------------------------------------------------------
// Task lifecycle.

Task* Runtime::allocate_task(detail::Worker& w, Task* parent) {
  Task* t = w.alloc->allocate();
  t->reset(parent, static_cast<std::uint16_t>(w.id));
  if (parent != nullptr && parent->group != nullptr) {
    t->group = parent->group;
    t->group->live.fetch_add(1, std::memory_order_relaxed);
  }
  if (parent != nullptr) {
    // Owner-thread-only increments would be wrong here: any worker running
    // `parent` may spawn concurrently with a sibling finishing, so these
    // two do need RMW. They are on the (uncontended) parent task line, not
    // on a global.
    parent->refs.fetch_add(1, std::memory_order_relaxed);
    parent->active_children.fetch_add(1, std::memory_order_relaxed);
  }
  bump(w.created);
  prof_.thread(w.id).counters.ntasks_created++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_created();
  return t;
}

Task* Runtime::dispatch(detail::Worker& w, Task* t) {
  // NA-RP: a victim with an open redirect session sends new tasks to the
  // thief instead of its static target (Alg. 3).
  if (w.redirect_thief >= 0) {
    if (xq_.push(w.id, w.redirect_thief, t)) {
      ++w.redirect_pushed;
      Counters& c = prof_.thread(w.id).counters;
      if (topo_.local(w.id, w.redirect_thief))
        c.nsteal_local++;
      else
        c.nsteal_remote++;
      if (w.redirect_pushed >=
          static_cast<std::uint32_t>(effective_dlb(w).n_steal))
        end_redirect_session(w);
      return nullptr;
    }
    // Thief queue full: the session ends (isTargetQFull branch of Alg. 3)
    // and this task falls through to the static balancer.
    prof_.thread(w.id).counters.nreq_target_full++;
    end_redirect_session(w);
  }

  // Static round-robin over all workers, starting with the master queue
  // (§II-B). A full target queue means the task runs immediately.
  const int target = static_cast<int>(
      w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
  ++w.rr_cursor;
  if (xq_.push(w.id, target, t)) {
    prof_.thread(w.id).counters.ntasks_static_push++;
    return nullptr;
  }
  // Explicit backpressure (§II-B): every queue this producer could use is
  // full, so the task runs inline on the spawning worker — bounding queue
  // memory and recursion depth instead of failing.
  prof_.thread(w.id).counters.ntasks_imm_exec++;
  prof_.thread(w.id).counters.overflow_inline++;
  return t;
}

void Runtime::execute(detail::Worker& w, Task* t) {
  t->executor = static_cast<std::uint16_t>(w.id);
  {
    Counters& c = prof_.thread(w.id).counters;
    if (t->creator == w.id)
      c.ntasks_self++;
    else if (topo_.local(w.id, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  const bool sample = cfg_.dlb == DlbKind::kAdaptive &&
                      (w.sample_tick++ & 15u) == 0;
  const std::uint64_t t0 = sample ? rdtscp() : 0;
  {
    ScopedEvent ev(prof_.thread(w.id), EventKind::kTask);
    // A task dequeued from a cancelled extent is drained, not run: the
    // invoke thunk destroys the payload but skips the body, and the full
    // completion protocol below still executes so counters, census, group
    // and reference counts stay exact.
    const bool skip = task_cancelled(t);
    if (skip) prof_.thread(w.id).counters.ntasks_cancelled++;
    TaskContext ctx(this, &w, t, skip);
    try {
      t->invoke(t, ctx, skip);
    } catch (...) {
      // First-exception-wins into the task's own slot; finish() escalates
      // it to the nearest consumer once the task completes.
      t->err.try_store(std::current_exception());
      prof_.thread(w.id).counters.nexceptions++;
    }
    if (ctx.dep_scope_) {
      // Tear down the dependence scope: return the address-map's task
      // references. Children themselves stay tracked via active_children.
      // Must run even after a throw, or deferred successors would leak
      // and their predecessors' refs never drop.
      std::vector<Task*> refs;
      ctx.dep_scope_->close(&refs);
      for (Task* r : refs) deref(w, r);
    }
  }
  if (sample) {
    // Includes nested child executions when the body ran some inline;
    // still a usable size-class signal (and monotone with task size).
    const std::uint64_t dt = rdtscp() - t0;
    w.avg_task_cycles =
        w.avg_task_cycles == 0 ? dt
                               : w.avg_task_cycles + (dt - w.avg_task_cycles) / 8;
  }
  finish(w, t);
}

void Runtime::finish(detail::Worker& w, Task* t) {
  Task* parent = t->parent;
  TaskGroup* group = t->group;
  bump(w.executed);
  prof_.thread(w.id).counters.ntasks_executed++;
  if (cfg_.barrier == BarrierKind::kCentral) central_.task_finished();
  // Release dependent successors whose last predecessor this was; they
  // enter the normal dispatch path on this worker. This must run even when
  // the task failed — a cancelled successor is drained, never stranded.
  if (t->dep_state != nullptr) {
    std::vector<Task*> ready;
    detail::collect_ready_successors(t, &ready);
    for (Task* succ : ready) {
      if (Task* overflow = dispatch(w, succ)) execute(w, overflow);
    }
  }
  // Escalate a pending exception *now*, while our reference on the parent
  // still pins it: the parent's slot is rethrown at its next taskwait, the
  // group's when taskgroup() returns, the region's from run(). Ordered
  // before the active_children/group decrements below so a waiter that
  // observes the drained count also observes the stored exception.
  if (t->err.pending()) {
    if (std::exception_ptr ep = t->err.take())
      propagate_error(std::move(ep), parent, group);
  }
  deref(w, t);
  if (parent != nullptr) {
    // Release so the waiting parent's acquire load sees this child's
    // side effects once the count hits zero.
    parent->active_children.fetch_sub(1, std::memory_order_release);
    deref(w, parent);
  }
  // Group membership is released last so group_wait's zero implies every
  // member's effects (release/acquire pair with the waiting loop).
  if (group != nullptr) group->live.fetch_sub(1, std::memory_order_release);
}

void Runtime::deref(detail::Worker& w, Task* t) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // A fire-and-forget child that completed *after* this task's own
    // finish() may have escalated into our slot too late for anyone to
    // rethrow it; recover it here, at the last point the descriptor is
    // live. The parent pointer is unusable now (it may itself be
    // recycled), but the group is pinned: the child's deref of its parent
    // precedes the child's group-live decrement, so group_wait cannot
    // have returned yet.
    if (t->err.pending()) {
      if (std::exception_ptr ep = t->err.take())
        propagate_error(std::move(ep), nullptr, t->group);
    }
    delete t->dep_state;  // safe: no edges can target a fully-released task
    t->dep_state = nullptr;
    w.alloc->release(t);
  }
}

// --------------------------------------------------------------------------
// Scheduling.

Task* Runtime::find_task(detail::Worker& w) {
  Task* t = xq_.pop(w.id);
  if (t != nullptr) {
    w.idle_polls = 0;
    w.request_round_open = false;
    w.backoff.reset();
    if (cfg_.dlb != DlbKind::kNone) victim_check(w);
  }
  return t;
}

void Runtime::idle_step(detail::Worker& w) {
  // Chaos hook: spurious wakeup — an extra yield/pause in the idle loop,
  // modelling an OS preemption right where the thief/victim protocol and
  // the barrier polling interleave.
  if (FaultInjector* fi = fault_injector())
    fi->perturb(FaultPoint::kIdleWakeup);
  // A victim that went idle mid-redirect flushes the session: it has no
  // more spawns to redirect, so it re-opens itself to new requests.
  if (w.redirect_thief >= 0) end_redirect_session(w);

  if (cfg_.dlb != DlbKind::kNone && cfg_.num_threads > 1) {
    if (!w.request_round_open) {
      thief_send_requests(w);
      w.request_round_open = true;
      w.idle_polls = 0;
    } else if (++w.idle_polls >= effective_dlb(w).t_interval) {
      // Timeout (§IV-B): request lost/overwritten or victim idle — retry.
      thief_send_requests(w);
      w.idle_polls = 0;
    }
    // Even an idle worker can be a victim of redirected pushes building up
    // work for it, and — for NA-WS — of batch migration; it must keep
    // handling requests so two mutually-idle workers cannot livelock on
    // unanswered cells.
    victim_check(w);
  }
  // Adaptive spin → pause → yield escalation; every waiting loop funnels
  // through here so the whole runtime shares one backoff policy.
  if (w.backoff.step(cfg_.yield_after_idle))
    prof_.thread(w.id).counters.nidle_yields++;
}

void Runtime::worker_loop(detail::Worker& w, std::uint64_t gen) {
  bool arrived = false;
  std::uint64_t stall_start = 0;
  ThreadProfile& prof = prof_.thread(w.id);

  for (;;) {
    if (Task* t = find_task(w)) {
      if (stall_start != 0) {
        prof.record(EventKind::kStall, stall_start, rdtscp());
        stall_start = 0;
      }
      execute(w, t);
      continue;
    }
    if (stall_start == 0 && prof_.events_enabled()) stall_start = rdtscp();
    idle_step(w);  // DLB duties + adaptive spin/pause/yield backoff

    bool released = false;
    if (cfg_.barrier == BarrierKind::kCentral) {
      if (!arrived) {
        central_.arrive(gen);
        arrived = true;
      }
      released = central_.poll(gen);
    } else {
      released = tree_.poll(w.id, w.created.load(std::memory_order_relaxed),
                            w.executed.load(std::memory_order_relaxed), gen);
    }
    if (released) {
      if (stall_start != 0)
        prof.record(EventKind::kStall, stall_start, rdtscp());
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Dynamic load balancing.

DlbConfig Runtime::effective_dlb(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb_cfg;
  // Table IV guideline rows, keyed by this worker's sampled task size.
  const std::uint64_t s = w.avg_task_cycles;
  if (s == 0 || s < 100) return {1, 2, 10'000, 1.0};
  if (s < 1'000) return {4, 16, 10'000, 1.0};
  if (s < 10'000) return {8, 32, 10'000, 0.5};
  return {24, 32, 1'000, 0.08};  // RP row (Table IV: P_local 3-12%)
}

DlbKind Runtime::effective_strategy(const detail::Worker& w) const noexcept {
  if (cfg_.dlb != DlbKind::kAdaptive) return cfg_.dlb;
  return w.avg_task_cycles >= 10'000 ? DlbKind::kRedirectPush
                                     : DlbKind::kWorkSteal;
}

void Runtime::thief_send_requests(detail::Worker& w) {
  Counters& c = prof_.thread(w.id).counters;
  const DlbConfig dc = effective_dlb(w);
  for (int i = 0; i < dc.n_victim; ++i) {
    const int v = pick_victim(topo_, w.id, dc.p_local, w.rng);
    if (v < 0) return;
    if (workers_[static_cast<std::size_t>(v)]->cells.try_request(w.id))
      c.nreq_sent++;
  }
}

void Runtime::victim_check(detail::Worker& w) {
  if (w.redirect_thief >= 0) return;  // NA-RP session in progress
  const int thief = w.cells.poll_request();
  if (thief < 0 || thief == w.id) return;
  Counters& c = prof_.thread(w.id).counters;
  c.nreq_handled++;
  if (effective_strategy(w) == DlbKind::kRedirectPush) {
    // Open a redirect session (Alg. 3); the round completes when the
    // session ends so only one redirect target is active at a time.
    w.redirect_thief = thief;
    w.redirect_pushed = 0;
  } else {
    do_work_steal(w, thief);
    w.cells.complete_round();
  }
}

void Runtime::do_work_steal(detail::Worker& w, int thief) {
  // Alg. 4, batched: drain up to n_steal tasks from our own row with one
  // counter probe (pop_batch), then hand them over with one batched push —
  // one acquire/release pair per batch instead of per task. Every hop
  // stays SPSC-legal: we consume our row and produce into q[thief][w].
  Counters& c = prof_.thread(w.id).counters;
  constexpr std::size_t kMaxMigrate = 64;
  Task* batch[kMaxMigrate];
  const std::size_t n_steal =
      static_cast<std::size_t>(effective_dlb(w).n_steal);
  const std::size_t want = n_steal < kMaxMigrate ? n_steal : kMaxMigrate;
  const std::size_t got = xq_.pop_batch(w.id, batch, want);
  if (got == 0) {
    c.nreq_src_empty++;
    return;
  }
  const std::size_t moved = xq_.push_batch(w.id, thief, batch, got);
  if (moved < got) {
    // Thief queue full: keep the leftovers. Our master queue may itself be
    // full, in which case the task runs right here (standard overflow).
    c.nreq_target_full++;
    for (std::size_t i = moved; i < got; ++i) {
      if (!xq_.push(w.id, w.id, batch[i])) {
        c.ntasks_imm_exec++;
        c.overflow_inline++;
        execute(w, batch[i]);
      }
    }
  }
  if (moved > 0) {
    c.nreq_has_steal++;
    if (topo_.local(w.id, thief))
      c.nsteal_local += moved;
    else
      c.nsteal_remote += moved;
  }
}

void Runtime::end_redirect_session(detail::Worker& w) {
  if (w.redirect_thief < 0) return;
  if (w.redirect_pushed > 0)
    prof_.thread(w.id).counters.nreq_has_steal++;
  else
    prof_.thread(w.id).counters.nreq_src_empty++;
  w.redirect_thief = -1;
  w.redirect_pushed = 0;
  w.cells.complete_round();
}

void Runtime::group_wait(detail::Worker& w, TaskGroup& group) {
  while (group.live.load(std::memory_order_acquire) != 0) {
    if (Task* other = find_task(w)) {
      execute(w, other);
      continue;
    }
    idle_step(w);  // shared backoff policy lives there
  }
}

// --------------------------------------------------------------------------
// Fault tolerance.

bool Runtime::task_cancelled(const Task* t) const noexcept {
  if (region_cancel_.load(std::memory_order_relaxed)) return true;
  return t != nullptr && t->group != nullptr &&
         t->group->cancelled.load(std::memory_order_relaxed);
}

void Runtime::propagate_error(std::exception_ptr ep, Task* parent,
                              TaskGroup* group) noexcept {
  // Nearest consumer first: the parent's own slot — but only when the
  // parent shares the group extent. Across a taskgroup boundary the group
  // must observe the failure directly, or a parent that never taskwaits
  // again would swallow it. Storing into the parent does NOT cancel
  // anything: the parent may catch at its next taskwait and recover.
  if (parent != nullptr && parent->group == group) {
    parent->err.try_store(std::move(ep));  // loser is dropped: first wins
    return;
  }
  if (group != nullptr) {
    // Terminal for the group: cancel the remaining members and latch the
    // exception for the taskgroup() caller.
    group->cancelled.store(true, std::memory_order_relaxed);
    group->err.try_store(std::move(ep));
    return;
  }
  // No enclosing consumer: region scope. Cancel the rest of the region so
  // run() returns promptly, then rethrows from the region slot.
  region_cancel_.store(true, std::memory_order_relaxed);
  region_err_.try_store(std::move(ep));
}

void Runtime::start_watchdog() {
  if (cfg_.watchdog_timeout_ms == 0) return;
  Watchdog::Hooks hooks;
  hooks.timeout_ms = cfg_.watchdog_timeout_ms;
  hooks.progress = [this]() noexcept {
    // Monotone: lifetime created+executed over the team. Any scheduled
    // task moves it; a wedged region leaves it frozen.
    std::uint64_t sig = 0;
    for (const auto& w : workers_)
      sig += w->created.load(std::memory_order_relaxed) +
             w->executed.load(std::memory_order_relaxed);
    return sig;
  };
  hooks.active = [this]() noexcept {
    return region_active_.load(std::memory_order_relaxed);
  };
  hooks.on_stall = [this] {
    const std::string snap = debug_snapshot();
    if (cfg_.watchdog_handler) {
      cfg_.watchdog_handler(snap);
      return;
    }
    std::fprintf(stderr,
                 "[xtask] watchdog: no scheduler progress for %llu ms; "
                 "aborting\n%s",
                 static_cast<unsigned long long>(cfg_.watchdog_timeout_ms),
                 snap.c_str());
    std::abort();
  };
  watchdog_.start(std::move(hooks));
}

std::string Runtime::debug_snapshot() const {
  // Reads only atomics (and immutable config), so any thread may call it
  // while the team runs; values from different cells may be mutually
  // inconsistent, which is fine for a diagnostic dump.
  std::ostringstream os;
  os << "=== xtask runtime snapshot ===\n"
     << "threads=" << cfg_.num_threads << " barrier="
     << (cfg_.barrier == BarrierKind::kCentral ? "central" : "tree")
     << " dlb=" << static_cast<int>(cfg_.dlb)
     << " region_active=" << region_active_.load(std::memory_order_relaxed)
     << " region_cancelled="
     << region_cancel_.load(std::memory_order_relaxed)
     << " region_error=" << region_err_.pending() << '\n';
  if (cfg_.barrier == BarrierKind::kCentral)
    os << "central: task_count=" << central_.task_count() << '\n';
  else
    os << "tree: census_passes=" << tree_.passes() << '\n';
  std::uint64_t created = 0;
  std::uint64_t executed = 0;
  for (const auto& w : workers_) {
    const std::uint64_t c = w->created.load(std::memory_order_relaxed);
    const std::uint64_t e = w->executed.load(std::memory_order_relaxed);
    created += c;
    executed += e;
    const std::uint64_t req =
        w->cells.request.load(std::memory_order_relaxed);
    os << "worker " << w->id << ": created=" << c << " executed=" << e
       << " queued~=" << xq_.consumer_occupancy(w->id)
       << " steal_round=" << w->cells.round.load(std::memory_order_relaxed)
       << " steal_req={thief=" << steal::thief_of(req)
       << ",round=" << steal::round_of(req) << "}\n";
  }
  os << "totals: created=" << created << " executed=" << executed
     << " in_flight=" << (created - executed) << '\n';
  return os.str();
}

// --------------------------------------------------------------------------
// TaskContext.

bool TaskContext::taskyield() {
  detail::Worker& w = *w_;
  if (Task* t = rt_->find_task(w)) {
    rt_->execute(w, t);
    return true;
  }
  return false;
}

void TaskContext::taskwait() {
  if (current_ == nullptr) return;
  detail::Worker& w = *w_;
  if (current_->active_children.load(std::memory_order_acquire) != 0) {
    ScopedEvent ev(rt_->profiler().thread(w.id), EventKind::kTaskWait);
    while (current_->active_children.load(std::memory_order_acquire) != 0) {
      if (Task* t = rt_->find_task(w)) {
        rt_->execute(w, t);
        continue;
      }
      rt_->idle_step(w);  // shared backoff policy lives there
    }
  }
  // Every child completed, and each escalated into our slot before its
  // active_children decrement (release/acquire pair with the loop above),
  // so no writer can still be in flight. Rethrow the first child failure;
  // the body may catch it and recover — nothing is auto-cancelled here.
  if (current_->err.pending()) {
    if (std::exception_ptr ep = current_->err.take())
      std::rethrow_exception(ep);
  }
}

void TaskContext::cancel_group() noexcept {
  // OpenMP `cancel taskgroup`: innermost enclosing group, or — for tasks
  // outside any group — the whole parallel region.
  if (current_ != nullptr && current_->group != nullptr) {
    current_->group->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  rt_->region_cancel_.store(true, std::memory_order_relaxed);
}

bool TaskContext::cancelled() const noexcept {
  return rt_->task_cancelled(current_);
}

}  // namespace xtask
