// Adaptive dispatch mode selection (DESIGN.md "Adaptive dispatch & the
// occupancy bitmap").
//
// The paper's messaging steal protocol (NA-RP / NA-WS request rounds) is
// built for many-core, multi-socket machines: a request round costs two
// cache-line round trips and only pays off when queues are deep enough
// that a victim can amortize the exchange over a whole batch. On small
// teams, shallow queues, or an oversubscribed host (more workers than
// hardware threads, where a round trip can cost an OS scheduling quantum
// because the victim is not even running), a direct deque-style protocol —
// self-push dispatch plus pull-based stealing through the consumer-identity
// guard — wins by a wide margin.
//
// `dlb=adaptive` therefore runs one of two *dispatch modes* and switches
// between them at runtime:
//
//   kMessaging  — the paper's machinery unchanged: round-robin static
//                 push, Table-IV parameter adaptation, request rounds.
//   kDirect     — self-push dispatch (tasks stay on the spawning worker)
//                 and direct stealing: an idle worker borrows a victim's
//                 guard cell (free -> thief), pops a batch from its row,
//                 and requeues it locally.
//
// The decision lives in ModeController: a plain, single-threaded state
// machine (the same shape as HealthTracker) owned by worker 0, fed one
// ModeSignals sample per epoch from the XQueue occupancy-bitmap census.
// Keeping it pure in/out makes the hysteresis unit-testable without
// spinning up threads.
//
// Flap resistance is layered:
//  * signal hysteresis — separate enter/leave thresholds for the occupancy
//    and depth signals, selected by the *current* mode, so a signal
//    hovering at one boundary cannot oscillate the decision;
//  * time hysteresis — a switch needs `confirm_epochs` CONSECUTIVE epochs
//    desiring the other mode; any epoch agreeing with the current mode
//    resets the streak. A square wave with period < confirm_epochs (e.g.
//    quarantine flapping healthy_workers, or bursty queue depth) never
//    switches at all.
#pragma once

#include <algorithm>
#include <cstdint>

namespace xtask {

/// Which dispatch machinery `dlb=adaptive` is currently running.
enum class DispatchMode : std::uint32_t {
  kMessaging = 0,  // paper protocol: RR push + request rounds
  kDirect = 1,     // self-push + guard-borrowed direct stealing
};

/// Forced mode selection (`dmode=` registry key). kAuto lets the
/// ModeController switch per-epoch; the other two pin the mode for
/// ablation and tests.
enum class DispatchModePolicy : std::uint32_t {
  kAuto = 0,
  kMessaging = 1,
  kDirect = 2,
};

/// One epoch's observation, assembled from the XQueue bitmap census and
/// the runtime's health bookkeeping.
struct ModeSignals {
  int occupied_queues = 0;        // visibly non-empty queues (census)
  std::uint64_t queued_tasks = 0; // approximate total queued (census)
  int healthy_workers = 0;        // workers not quarantined
  int zones = 0;                  // NUMA zones in the active topology
};

/// Calibrated switch points. Defaults chosen from the 4-thread BOTS
/// ablation (bench/ablation_adaptive.cpp) and the paper's Table IV scale
/// argument; `hw_threads` is filled in by the runtime.
struct ModeThresholds {
  // Static gates: beyond either, the messaging protocol is the design
  // point (its O(1)-per-round cost is what scales) and direct stealing's
  // occupancy-mask scan stops being cheap.
  int direct_max_workers = 32;
  int direct_max_zones = 2;
  // Oversubscription gate: with more runnable workers than hardware
  // threads, a messaging round trip can stall for a scheduling quantum
  // waiting on a descheduled victim — direct stealing needs no victim
  // cooperation, so it wins regardless of occupancy. 0 = unknown host.
  int hw_threads = 0;
  // Occupancy hysteresis band, in visibly occupied queues per healthy
  // worker. Below `occ_enter` the messaging fan-out is not materializing
  // (work is clumped on a few queues) and direct mode engages; once
  // direct, it persists until occupancy exceeds `occ_leave`.
  double occ_enter = 1.5;
  double occ_leave = 3.0;
  // Queue-depth hysteresis band, in queued tasks per healthy worker.
  // Deep queues are what let a messaging victim amortize a round over a
  // big migration batch.
  double depth_enter = 64.0;
  double depth_leave = 512.0;
  // Consecutive epochs desiring the other mode before a switch commits.
  int confirm_epochs = 3;
};

/// Per-epoch mode state machine. Single-threaded by construction: worker 0
/// owns it and publishes the result through an atomic the hot paths read
/// relaxed. Unit tests drive it directly with synthetic signal waves.
class ModeController {
 public:
  ModeController() noexcept : ModeController(ModeThresholds{}, 1, 1) {}

  /// The initial mode is decided from the static shape alone (no census
  /// exists before the first tasks run): small healthy team on few zones
  /// starts direct, anything bigger starts with the paper protocol.
  ModeController(const ModeThresholds& t, int workers, int zones) noexcept
      : thr_(t), mode_(static_mode(t, workers, zones)) {}

  /// The mode a team of this static shape starts in.
  static DispatchMode static_mode(const ModeThresholds& t, int workers,
                                  int zones) noexcept {
    if (t.hw_threads > 0 && workers > t.hw_threads)
      return DispatchMode::kDirect;  // oversubscribed: see header
    if (workers > t.direct_max_workers || zones > t.direct_max_zones)
      return DispatchMode::kMessaging;
    return DispatchMode::kDirect;
  }

  /// One epoch tick: fold in a census sample, return the (possibly new)
  /// mode. A switch requires `confirm_epochs` consecutive ticks desiring
  /// the other mode.
  DispatchMode observe(const ModeSignals& s) noexcept {
    const DispatchMode want = desired(s);
    if (want == mode_) {
      streak_ = 0;
      return mode_;
    }
    if (++streak_ >= thr_.confirm_epochs) {
      mode_ = want;
      streak_ = 0;
      ++switches_;
    }
    return mode_;
  }

  DispatchMode mode() const noexcept { return mode_; }
  std::uint64_t switches() const noexcept { return switches_; }
  const ModeThresholds& thresholds() const noexcept { return thr_; }

 private:
  /// The mode this epoch's signals argue for, with the hysteresis band
  /// anchored to the current mode.
  DispatchMode desired(const ModeSignals& s) const noexcept {
    const int healthy = std::max(1, s.healthy_workers);
    if (thr_.hw_threads > 0 && healthy > thr_.hw_threads)
      return DispatchMode::kDirect;  // oversubscription gate dominates
    if (healthy > thr_.direct_max_workers || s.zones > thr_.direct_max_zones)
      return DispatchMode::kMessaging;  // static scale gates
    const double occ = static_cast<double>(s.occupied_queues) / healthy;
    const double depth = static_cast<double>(s.queued_tasks) / healthy;
    const bool in_direct = mode_ == DispatchMode::kDirect;
    const double occ_gate = in_direct ? thr_.occ_leave : thr_.occ_enter;
    const double depth_gate = in_direct ? thr_.depth_leave : thr_.depth_enter;
    // Messaging needs BOTH broad occupancy (many queues worth raiding)
    // and depth (batches worth a round trip); either signal below its
    // gate keeps / makes the dispatch direct.
    return (occ >= occ_gate && depth >= depth_gate) ? DispatchMode::kMessaging
                                                    : DispatchMode::kDirect;
  }

  ModeThresholds thr_;
  DispatchMode mode_;
  int streak_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace xtask
