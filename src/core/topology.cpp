#include "core/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/common.hpp"

namespace xtask {

Topology Topology::synthetic(int num_workers, int num_zones) {
  XTASK_CHECK(num_workers > 0);
  num_zones = std::clamp(num_zones, 1, num_workers);
  Topology t;
  t.zone_of_.resize(static_cast<size_t>(num_workers));
  t.members_.resize(static_cast<size_t>(num_zones));
  // Contiguous striping ("close" affinity): the first ceil(n/z) workers in
  // zone 0, etc. Zones differ in size by at most one worker.
  const int base = num_workers / num_zones;
  const int extra = num_workers % num_zones;
  int w = 0;
  for (int z = 0; z < num_zones; ++z) {
    const int count = base + (z < extra ? 1 : 0);
    for (int i = 0; i < count; ++i, ++w) {
      t.zone_of_[static_cast<size_t>(w)] = z;
      t.members_[static_cast<size_t>(z)].push_back(w);
    }
  }
  return t;
}

namespace {

// Parse a Linux cpulist string such as "0-3,8,10-11" into cpu ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    if (dash == std::string::npos) {
      cpus.push_back(std::atoi(tok.c_str()));
    } else {
      const int lo = std::atoi(tok.substr(0, dash).c_str());
      const int hi = std::atoi(tok.substr(dash + 1).c_str());
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
  }
  return cpus;
}

}  // namespace

Topology Topology::detect(int num_workers) {
  XTASK_CHECK(num_workers > 0);
  // Enumerate /sys/devices/system/node/nodeN/cpulist.
  std::vector<std::vector<int>> node_cpus;
  for (int n = 0;; ++n) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpulist", n);
    std::ifstream f(path);
    if (!f.good()) break;
    std::string line;
    std::getline(f, line);
    auto cpus = parse_cpulist(line);
    if (!cpus.empty()) node_cpus.push_back(std::move(cpus));
  }
  if (node_cpus.size() <= 1) return synthetic(num_workers, 1);

  // Map cpu id -> node, then workers are bound to online cpus in id order
  // (close affinity), wrapping if there are more workers than cpus.
  std::vector<std::pair<int, int>> cpu_node;  // (cpu, node)
  for (size_t n = 0; n < node_cpus.size(); ++n)
    for (int c : node_cpus[n]) cpu_node.emplace_back(c, static_cast<int>(n));
  std::sort(cpu_node.begin(), cpu_node.end());

  Topology t;
  t.zone_of_.resize(static_cast<size_t>(num_workers));
  t.members_.resize(node_cpus.size());
  for (int w = 0; w < num_workers; ++w) {
    const int node = cpu_node[static_cast<size_t>(w) % cpu_node.size()].second;
    t.zone_of_[static_cast<size_t>(w)] = node;
    t.members_[static_cast<size_t>(node)].push_back(w);
  }
  // Drop zones that received no workers (possible when workers < nodes) so
  // num_zones() reflects populated zones only.
  std::vector<std::vector<int>> populated;
  std::vector<int> remap(t.members_.size(), -1);
  for (size_t z = 0; z < t.members_.size(); ++z) {
    if (!t.members_[z].empty()) {
      remap[z] = static_cast<int>(populated.size());
      populated.push_back(std::move(t.members_[z]));
    }
  }
  for (auto& z : t.zone_of_) z = remap[static_cast<size_t>(z)];
  t.members_ = std::move(populated);
  return t;
}

std::string Topology::describe() const {
  std::string out = "topology: " + std::to_string(num_workers()) +
                    " workers / " + std::to_string(num_zones()) + " zones [";
  for (int z = 0; z < num_zones(); ++z) {
    if (z) out += ", ";
    out += "z" + std::to_string(z) + ":" +
           std::to_string(zone_members(z).size());
  }
  out += "]";
  return out;
}

}  // namespace xtask
