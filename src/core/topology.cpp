#include "core/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/common.hpp"

namespace xtask {

Topology Topology::synthetic(int num_workers, int num_zones) {
  XTASK_CHECK(num_workers > 0);
  num_zones = std::clamp(num_zones, 1, num_workers);
  Topology t;
  t.zone_of_.resize(static_cast<size_t>(num_workers));
  t.members_.resize(static_cast<size_t>(num_zones));
  // Contiguous striping ("close" affinity): the first ceil(n/z) workers in
  // zone 0, etc. Zones differ in size by at most one worker.
  const int base = num_workers / num_zones;
  const int extra = num_workers % num_zones;
  int w = 0;
  for (int z = 0; z < num_zones; ++z) {
    const int count = base + (z < extra ? 1 : 0);
    for (int i = 0; i < count; ++i, ++w) {
      t.zone_of_[static_cast<size_t>(w)] = z;
      t.members_[static_cast<size_t>(z)].push_back(w);
    }
  }
  return t;
}

namespace {

// Parse a Linux cpulist string such as "0-3,8,10-11" into cpu ids.
std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    if (dash == std::string::npos) {
      cpus.push_back(std::atoi(tok.c_str()));
    } else {
      const int lo = std::atoi(tok.substr(0, dash).c_str());
      const int hi = std::atoi(tok.substr(dash + 1).c_str());
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
  }
  return cpus;
}

}  // namespace

Topology Topology::detect(int num_workers) {
  XTASK_CHECK(num_workers > 0);
  // Enumerate /sys/devices/system/node/nodeN/cpulist.
  std::vector<std::vector<int>> node_cpus;
  for (int n = 0;; ++n) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpulist", n);
    std::ifstream f(path);
    if (!f.good()) break;
    std::string line;
    std::getline(f, line);
    auto cpus = parse_cpulist(line);
    if (!cpus.empty()) node_cpus.push_back(std::move(cpus));
  }
  if (node_cpus.size() <= 1) return synthetic(num_workers, 1);

  // Map cpu id -> node, then workers are bound to online cpus in id order
  // (close affinity), wrapping if there are more workers than cpus.
  std::vector<std::pair<int, int>> cpu_node;  // (cpu, node)
  for (size_t n = 0; n < node_cpus.size(); ++n)
    for (int c : node_cpus[n]) cpu_node.emplace_back(c, static_cast<int>(n));
  std::sort(cpu_node.begin(), cpu_node.end());

  Topology t;
  t.zone_of_.resize(static_cast<size_t>(num_workers));
  t.members_.resize(node_cpus.size());
  for (int w = 0; w < num_workers; ++w) {
    const int node = cpu_node[static_cast<size_t>(w) % cpu_node.size()].second;
    t.zone_of_[static_cast<size_t>(w)] = node;
    t.members_[static_cast<size_t>(node)].push_back(w);
  }
  // Drop zones that received no workers (possible when workers < nodes) so
  // num_zones() reflects populated zones only.
  std::vector<std::vector<int>> populated;
  std::vector<int> remap(t.members_.size(), -1);
  for (size_t z = 0; z < t.members_.size(); ++z) {
    if (!t.members_[z].empty()) {
      remap[z] = static_cast<int>(populated.size());
      populated.push_back(std::move(t.members_[z]));
    }
  }
  for (auto& z : t.zone_of_) z = remap[static_cast<size_t>(z)];
  t.members_ = std::move(populated);
  return t;
}

namespace {

/// Strict positive decimal integer; rejects signs, whitespace, and junk.
bool parse_pos_int(const std::string& s, int* out) {
  if (s.empty() || s.size() > 7) return false;
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v < 1) return false;
  *out = static_cast<int>(v);
  return true;
}

[[noreturn]] void bad_spec(const std::string& spec) {
  throw std::invalid_argument("bad topology spec '" + spec +
                              "' (want ZxW, a:b:c, N, or auto)");
}

}  // namespace

Topology Topology::parse(const std::string& spec, int default_workers) {
  if (spec == "auto" || spec == "detect") {
    const int w =
        default_workers > 0
            ? default_workers
            : static_cast<int>(
                  std::max(1u, std::thread::hardware_concurrency()));
    return detect(w);
  }
  const auto x = spec.find('x');
  if (x != std::string::npos) {
    int zones = 0;
    int per_zone = 0;
    if (!parse_pos_int(spec.substr(0, x), &zones) ||
        !parse_pos_int(spec.substr(x + 1), &per_zone))
      bad_spec(spec);
    return synthetic(zones * per_zone, zones);
  }
  if (spec.find(':') != std::string::npos) {
    // Manual split: std::getline drops a trailing empty field, which would
    // let "3:" slip through as {3}.
    std::vector<int> sizes;
    std::size_t start = 0;
    for (;;) {
      auto colon = spec.find(':', start);
      const bool last = colon == std::string::npos;
      if (last) colon = spec.size();
      const std::string tok(spec, start, colon - start);
      int n = 0;
      if (!parse_pos_int(tok, &n)) bad_spec(spec);
      sizes.push_back(n);
      if (last) break;
      start = colon + 1;
    }
    if (sizes.empty()) bad_spec(spec);
    Topology t;
    t.members_.resize(sizes.size());
    int w = 0;
    for (size_t z = 0; z < sizes.size(); ++z) {
      for (int i = 0; i < sizes[z]; ++i, ++w) {
        t.zone_of_.push_back(static_cast<int>(z));
        t.members_[z].push_back(w);
      }
    }
    return t;
  }
  int n = 0;
  if (!parse_pos_int(spec, &n)) bad_spec(spec);
  return synthetic(n, 1);
}

std::string Topology::spec() const {
  if (num_workers() == 0) return "";
  const std::size_t first = members_[0].size();
  bool uniform = true;
  for (const auto& zone : members_)
    if (zone.size() != first) uniform = false;
  if (uniform)
    return std::to_string(num_zones()) + "x" + std::to_string(first);
  std::string out;
  for (std::size_t z = 0; z < members_.size(); ++z) {
    if (z) out += ':';
    out += std::to_string(members_[z].size());
  }
  return out;
}

std::string Topology::describe() const {
  std::string out = "topology: " + std::to_string(num_workers()) +
                    " workers / " + std::to_string(num_zones()) + " zones [";
  for (int z = 0; z < num_zones(); ++z) {
    if (z) out += ", ";
    out += "z" + std::to_string(z) + ":" +
           std::to_string(zone_members(z).size());
  }
  out += "]";
  return out;
}

}  // namespace xtask
