// OpenMP-style task dependences (`depend(in:)/depend(out:)/depend(inout:)`)
// for the xtask runtime.
//
// The paper's GOMP work strips the *global* lock from dependence handling;
// the structure that remains (and that this module implements) is:
//
//  * a per-scope address map (last writer + readers per depend address).
//    OpenMP only orders sibling tasks, and siblings are spawned by one
//    thread — the parent's — so the map needs no synchronization at all;
//  * per-task edges: an atomic count of unmet predecessors and, on each
//    predecessor, a successor list consulted at completion. The list is
//    guarded by a per-task micro spinlock held for a few instructions; it
//    is only ever contended by one registering parent and one completing
//    worker, never globally (contrast with GOMP's single task lock).
//
// A task with unmet dependences is *deferred*: created and counted as in
// flight (so barriers stay correct) but not queued; the worker that
// completes its last predecessor dispatches it through the normal
// (XQueue / DLB) path.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/common.hpp"
#include "core/task.hpp"

namespace xtask {

/// One dependence item: an address and an access mode.
struct Dep {
  const void* addr;
  bool write;
};

/// depend(in: x) — reads x; ordered after the last writer of x.
inline Dep din(const void* addr) noexcept { return {addr, false}; }
/// depend(out: x) / depend(inout: x) — writes x; ordered after the last
/// writer and all readers since.
inline Dep dout(const void* addr) noexcept { return {addr, true}; }

namespace detail {

/// Per-task dependence state, allocated lazily (most tasks have none).
struct TaskDepState {
  /// Micro spinlock guarding `successors` + `completed`. See file comment
  /// for why this is not the global-lock pattern the paper removes.
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  bool completed = false;
  std::vector<Task*> successors;

  void acquire() noexcept {
    while (lock.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
  void release() noexcept { lock.clear(std::memory_order_release); }
};

/// Per-scope (per parent task) dependence map. Created on first
/// dependent spawn, destroyed when the owning task's body finishes.
/// Accessed only by the thread executing the owning task.
class DepScope {
 public:
  ~DepScope();

  /// Register `t` with its dependence list. Returns the number of unmet
  /// predecessors recorded into t->deps_pending; the caller defers
  /// dispatch when it is nonzero. Takes map references (task refcounts)
  /// on `t` as needed.
  std::uint32_t register_task(Task* t, const Dep* deps, std::size_t count);

  /// Tear down the scope: every task reference the map (or its history)
  /// holds is appended to `refs_out` for the caller to deref. Must be
  /// called before destruction.
  void close(std::vector<Task*>* refs_out);

 private:
  struct AddrState {
    Task* last_writer = nullptr;        // holds a task ref
    std::vector<Task*> readers;         // each holds a task ref
  };

  /// Add edge pred -> succ if pred has not completed yet. Returns true
  /// when an edge was created.
  static bool add_edge(Task* pred, Task* succ);

  std::unordered_map<const void*, AddrState> addrs_;
  // Tasks whose frontier entry was replaced; their map refs are released
  // in bulk at close() (bounded by the scope's spawn count).
  std::vector<Task*> dropped_;
};

/// Completion hook: marks `t` complete and returns the successors whose
/// dependence count reached zero (the caller dispatches them). No-op for
/// tasks without dependence state.
void collect_ready_successors(Task* t, std::vector<Task*>* ready);

}  // namespace detail
}  // namespace xtask
