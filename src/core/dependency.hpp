// OpenMP-style task dependences (`depend(in:)/depend(out:)/depend(inout:)`)
// for the xtask runtime.
//
// The paper's GOMP work strips the *global* lock from dependence handling;
// this module goes the rest of the way (the Nanos6 wait-free design from
// PAPERS.md) so nothing on the dependence path locks at all:
//
//  * a per-scope address map (last writer + reader set per depend
//    address). OpenMP only orders sibling tasks, and siblings are spawned
//    by one thread — the parent's — so the map needs no synchronization;
//  * per-task edges: an atomic count of unmet predecessors and, on each
//    predecessor, a lock-free successor list (release_list.hpp): edges are
//    CAS-pushed intrusive nodes, and completion seals the list with one
//    exchange — the two parties (registering parent, completing worker)
//    never spin on each other.
//
// A task with unmet dependences is *deferred*: created and counted as in
// flight (so barriers stay correct) but not queued; the worker whose
// completion decrements the count to zero dispatches it through the
// normal (XQueue / DLB / adaptive) path.
//
// Frontier semantics (the address map). Per address the map keeps the
// *frontier*: the last writer plus the readers that arrived since. A new
// access orders against exactly the frontier entries its mode conflicts
// with, then updates the frontier:
//
//   in    — one edge from the last writer (if any); joins the reader set.
//   out   — edges from the last writer and every current reader; the
//   inout   frontier *collapses* to the new writer (reader set cleared,
//           old entries' map references dropped).
//
// Collapse is what keeps registration O(conflicts): a `din` after an
// `inout` chain sees exactly one frontier entry — the last writer — and
// never stale readers from before it (the reader-after-writer regression
// tests in tests/test_dependency.cpp pin this, including the historical
// `{din,dout}` spelling of inout, which used to leave the task behind in
// its own reader set and double-edge every later conflict).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/common.hpp"
#include "core/release_list.hpp"
#include "core/task.hpp"

namespace xtask {

/// Access mode of one dependence item.
enum class DepMode : std::uint8_t {
  kIn = 0,     // reads the address
  kOut = 1,    // writes the address
  kInOut = 2,  // reads and writes; orders identically to kOut but is kept
               // distinct for graph capture/introspection
};

/// One dependence item: an address and an access mode.
struct Dep {
  const void* addr;
  DepMode mode;
};

/// depend(in: x) — reads x; ordered after the last writer of x.
inline Dep din(const void* addr) noexcept { return {addr, DepMode::kIn}; }
/// depend(out: x) — writes x; ordered after the last writer and all
/// readers since.
inline Dep dout(const void* addr) noexcept { return {addr, DepMode::kOut}; }
/// depend(inout: x) — reads and writes x. Prefer this over the historical
/// `{din(&x), dout(&x)}` spelling, which is still accepted (and now
/// deduplicated) but registers two map accesses.
inline Dep dinout(const void* addr) noexcept {
  return {addr, DepMode::kInOut};
}

namespace detail {

/// True when `m` conflicts like a writer (out/inout).
constexpr bool dep_writes(DepMode m) noexcept { return m != DepMode::kIn; }

/// Per-task dependence state, allocated lazily (most tasks have none):
/// the lock-free list of successors to release at completion.
struct TaskDepState {
  ReleaseList successors;
};

/// The frontier map shared by DepScope (live tasks) and TaskGraph capture
/// (recorded node ids). Single-threaded by construction in both uses, so
/// it is plain data; all synchronization lives in the edge representation
/// the callbacks create. `Node` must be cheap to copy and equality-
/// comparable (Task* / std::uint32_t).
///
/// access() invokes, in order:
///   edge(pred)  — for each frontier entry the new access conflicts with;
///   drop(node)  — for each frontier entry the access evicts;
///   retain(n)   — when `n` enters the frontier (at most once per call).
template <typename Node>
class DepFrontier {
 public:
  template <typename EdgeFn, typename RetainFn, typename DropFn>
  void access(Node n, const void* addr, DepMode mode, EdgeFn&& edge,
              RetainFn&& retain, DropFn&& drop) {
    Entry& e = map_[addr];
    if (dep_writes(mode)) {
      // Writer: ordered after the previous writer and every reader since;
      // the frontier collapses to the new writer. When n itself already
      // holds a frontier entry (re-registration like `{dout,dout}` or the
      // historical `{din,dout}` inout spelling) that entry is folded into
      // the writer slot — no self-edge, no double retain.
      bool self_retained = false;
      for (const Node& r : e.readers) {
        if (r == n) {
          self_retained = true;  // reader retain carries over to the writer
          continue;
        }
        edge(r);
        drop(r);
      }
      e.readers.clear();
      if (e.has_writer) {
        if (e.writer == n) return;  // already the frontier writer
        edge(e.writer);
        drop(e.writer);
      }
      e.writer = n;
      e.has_writer = true;
      if (!self_retained) retain(n);
    } else {
      // Reader: ordered after the last writer only — never after other
      // readers, and never after stale readers from before that writer
      // (collapse above already cleared them).
      if (e.has_writer && e.writer != n) edge(e.writer);
      // A task never joins its own frontier twice: if n is the current
      // writer its ordering is already captured (this is the
      // reader-after-writer fix — the old code pushed n into the reader
      // set here and every later writer double-edged against it). And a
      // duplicate `din` in one dependence list lands adjacently, so a
      // back() probe is a full dedup for the single-registration map.
      if (e.has_writer && e.writer == n) return;
      if (!e.readers.empty() && e.readers.back() == n) return;
      e.readers.push_back(n);
      retain(n);
    }
  }

  /// Visit every node the frontier still holds (one visit per retain()
  /// that was not matched by a drop()), then clear.
  template <typename EachFn>
  void clear(EachFn&& each) {
    for (auto& [addr, e] : map_) {
      if (e.has_writer) each(e.writer);
      for (const Node& r : e.readers) each(r);
    }
    map_.clear();
  }

  bool empty() const noexcept { return map_.empty(); }

  // --- introspection (tests, graph capture stats) -----------------------
  std::size_t reader_count(const void* addr) const {
    auto it = map_.find(addr);
    return it == map_.end() ? 0 : it->second.readers.size();
  }
  /// The frontier writer for `addr`, or `none` when absent.
  Node last_writer(const void* addr, Node none) const {
    auto it = map_.find(addr);
    return it != map_.end() && it->second.has_writer ? it->second.writer
                                                     : none;
  }

 private:
  struct Entry {
    Node writer{};
    bool has_writer = false;
    std::vector<Node> readers;  // readers since `writer`; collapsed on write
  };
  std::unordered_map<const void*, Entry> map_;
};

/// Per-scope (per parent task) dependence map. Created on first
/// dependent spawn, destroyed when the owning task's body finishes.
/// Accessed only by the thread executing the owning task.
class DepScope {
 public:
  ~DepScope();

  /// Register `t` with its dependence list. Returns the number of unmet
  /// predecessors recorded into t->deps_pending; the caller defers
  /// dispatch when it is nonzero. Takes map references (task refcounts)
  /// on `t` as needed.
  std::uint32_t register_task(Task* t, const Dep* deps, std::size_t count);

  /// Tear down the scope: every task reference the map (or its history)
  /// holds is appended to `refs_out` for the caller to deref. Must be
  /// called before destruction.
  void close(std::vector<Task*>* refs_out);

  // --- test introspection -----------------------------------------------
  std::size_t reader_count(const void* addr) const {
    return frontier_.reader_count(addr);
  }
  Task* last_writer(const void* addr) const {
    return frontier_.last_writer(addr, static_cast<Task*>(nullptr));
  }

 private:
  /// Add edge pred -> succ unless pred already completed (its release
  /// list is sealed). Returns true when an edge was created.
  static bool add_edge(Task* pred, Task* succ);

  DepFrontier<Task*> frontier_;
  // Tasks whose frontier entry was replaced; their map refs are released
  // in bulk at close() (bounded by the scope's spawn count).
  std::vector<Task*> dropped_;
};

/// Completion hook: seals `t`'s release list and returns the successors
/// whose dependence count reached zero (the caller dispatches them).
/// No-op for tasks without dependence state.
void collect_ready_successors(Task* t, std::vector<Task*>* ready);

}  // namespace detail
}  // namespace xtask
