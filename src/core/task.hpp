// Task representation for the xtask runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "core/common.hpp"
#include "core/fault.hpp"

namespace xtask {

class TaskContext;

namespace detail {
struct TaskDepState;  // dependency.hpp
}

/// Shared state of one `taskgroup` extent. Lives on the stack frame of the
/// TaskContext::taskgroup() call, which blocks until `live` drains to zero
/// and therefore outlives every member by construction.
struct TaskGroup {
  /// Tasks in the group's dynamic extent not yet completed (the synthetic
  /// body task counts as the initial 1).
  std::atomic<std::uint64_t> live{1};
  /// Cooperative cancellation flag: set by TaskContext::cancel_group() or
  /// automatically when a member's exception escalates to the group.
  /// Checked at spawn (new members are dropped) and at dequeue (queued
  /// members are drained without running their bodies).
  std::atomic<bool> cancelled{false};
  /// First exception raised in the extent and not consumed by an inner
  /// taskwait; rethrown when taskgroup() returns.
  ExceptionSlot err;
};

/// A unit of work: a type-erased functor plus the dependency bookkeeping
/// needed for `taskwait` and for task lifetime.
///
/// Lifetime follows a reference count: one reference for the task's own
/// execution plus one per outstanding child. A child finishing decrements
/// its parent's count; the task is recycled when the count reaches zero.
/// This supports the OpenMP-style structure the paper's benchmarks use
/// (spawn children, `taskwait`, return) but stays correct even when a
/// parent finishes without waiting.
struct alignas(kCacheLine) Task {
  /// Space for the captured functor. Sized so that sizeof(Task) is exactly
  /// three cache lines; BOTS-style closures (a few ints and pointers) fit
  /// without heap spill.
  static constexpr std::size_t kPayloadBytes = 128;

  using InvokeFn = void (*)(Task*, TaskContext&, bool skip_body);

  InvokeFn invoke = nullptr;        // runs and destroys the payload
  Task* parent = nullptr;           // dependency edge for taskwait
  std::atomic<std::uint32_t> refs{1};          // 1 (self) + live children
  std::atomic<std::uint32_t> active_children{0};  // children not yet done
  /// Unmet `depend` predecessors + the registration guard (see
  /// dependency.hpp); 0 for ordinary tasks.
  std::atomic<std::uint32_t> deps_pending{0};
  std::uint16_t creator = 0;        // worker id that spawned this task
  std::uint16_t executor = 0;       // worker id that ran it (profiling)
  /// Successor bookkeeping when this task is a `depend` predecessor: a
  /// lock-free release list that completion seals (dependency.hpp). Owned
  /// by the task, freed when the descriptor is recycled.
  detail::TaskDepState* dep_state = nullptr;
  /// Innermost enclosing taskgroup (nullptr when not in a group).
  /// Inherited by descendants at spawn; the live counter is decremented at
  /// completion. The group lives on the taskgroup caller's stack, which
  /// outlives every group member by construction.
  TaskGroup* group = nullptr;
  /// Exception raised by this task's body or escalated from a completed
  /// child; consumed at the owner's taskwait or escalated further when the
  /// descriptor is released (runtime.cpp, "Failure model" in DESIGN.md).
  ExceptionSlot err;

  alignas(16) unsigned char payload[kPayloadBytes];

  /// Construct the functor in-place. F must be invocable as f(TaskContext&).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kPayloadBytes,
                  "task closure too large for inline payload");
    static_assert(std::is_invocable_v<Fn&, TaskContext&>,
                  "task body must be callable with (TaskContext&)");
    ::new (static_cast<void*>(payload)) Fn(std::forward<F>(f));
    invoke = [](Task* t, TaskContext& ctx, bool skip_body) {
      Fn* fn = std::launder(reinterpret_cast<Fn*>(t->payload));
      // A cancelled task is drained, not run: the payload still needs its
      // destructor so captured resources are released, never leaked.
      if (!skip_body) (*fn)(ctx);
      fn->~Fn();
    };
  }

  /// Reset bookkeeping for reuse from an allocator free list. The caller
  /// (Runtime::deref) has already freed dep_state.
  void reset(Task* p, std::uint16_t creator_tid) noexcept {
    invoke = nullptr;
    parent = p;
    refs.store(1, std::memory_order_relaxed);
    active_children.store(0, std::memory_order_relaxed);
    deps_pending.store(0, std::memory_order_relaxed);
    creator = creator_tid;
    executor = creator_tid;
    dep_state = nullptr;
    group = nullptr;
    err.reset();
  }
};

static_assert(sizeof(Task) == 3 * kCacheLine, "Task should be 3 cache lines");

}  // namespace xtask
