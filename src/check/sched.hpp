// xcheck: a deterministic schedule-exploration model checker for the
// runtime's lock-less primitives (see DESIGN.md "Model checking the
// lock-less core").
//
// The pieces:
//
//  * Virtual threads. Each checked "thread" is a cooperative fiber
//    (reusing the simulator's ~30 ns context switch). Exactly one fiber
//    runs at a time, so the checker — not the OS — owns every
//    interleaving, and a whole execution is reproducible from the list of
//    decisions the scheduler made.
//
//  * Instrumented atomics. Under -DXTASK_MODEL_CHECK the `xtask::atomic`
//    alias in common.hpp resolves to xcheck::xatomic<T> (xatomic.hpp),
//    which yields to the scheduler before every load/store/RMW and runs
//    the access through the memory model below. Production builds resolve
//    the alias to std::atomic — byte-identical code, zero overhead.
//
//  * A view-based weak-memory model. Every atomic location keeps its full
//    modification order (a list of store "messages"); every thread keeps a
//    view: for each location, the oldest message it may still read. A
//    release store attaches the writer's view to the message; an acquire
//    load that reads a release message joins that view into the reader's.
//    A *relaxed* store attaches nothing — so a reader synchronizing
//    through it can still be handed stale values for every other
//    location. That gap is precisely what distinguishes a correct
//    release/acquire handshake from a mutated relaxed one, and the read
//    of a stale message is an explorable decision like any scheduling
//    choice. RMWs always read the latest message (atomicity) and extend
//    release sequences. seq_cst is modeled conservatively strongly via a
//    global SC view (good enough: the checked protocols are
//    release/acquire/relaxed throughout).
//
//  * Exploration strategies. Bounded-exhaustive DFS over all schedules
//    with a preemption bound (plus all read choices), PCT-style
//    randomized priority scheduling with a seed, and exact replay of a
//    recorded decision list.
//
// The checker is single-OS-threaded by construction: checked code runs
// cooperatively, so plain (non-atomic) fields are torn-free here even
// where real parallel execution relies on the single-writer discipline.
// Data races on plain fields are therefore *not* detected — that remains
// TSAN's job; xcheck explores the orderings TSAN cannot steer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace xtask::xcheck {

/// A thread's view: for each registered location (by id), the index of the
/// oldest message in that location's modification order the thread may
/// still read. Missing entries mean 0 (everything readable).
using View = std::vector<std::uint32_t>;

// --------------------------------------------------------------------------
// Exploration options / result.

struct ExploreOptions {
  enum class Mode {
    kExhaustive,  // bounded DFS over schedules and read choices
    kPct,         // randomized priority scheduling, `iterations` seeds
  };
  Mode mode = Mode::kExhaustive;

  /// DFS: preemptions allowed per execution (a preemption = switching away
  /// from a thread that could have kept running). Unforced switches beyond
  /// the bound are not explored; forced switches (current thread finished)
  /// are free. 2-3 finds the overwhelming majority of real bugs
  /// (CHESS/PCT literature) while keeping small configs fully enumerable.
  int preemption_bound = 3;

  /// DFS: hard cap on executions; exceeding it marks the result
  /// incomplete instead of running forever.
  std::uint64_t max_executions = 1'000'000;

  /// PCT: number of randomized executions and the base seed. Execution i
  /// derives its schedule from `seed + i`, so a failure report names the
  /// exact seed to replay.
  std::uint64_t iterations = 2000;
  std::uint64_t seed = 1;
  /// PCT: priority change points per execution (the "d" in PCT's d-bound).
  int pct_depth = 3;

  /// Per-execution step budget; exceeding it is reported as a violation
  /// (livelock / unbounded loop in the checked harness).
  std::uint64_t max_steps = 200'000;

  /// Record a human-readable event trace for the failing execution.
  bool record_trace = true;
};

struct ExploreResult {
  bool violation = false;
  std::string message;  // first violation's message

  /// DFS only: the whole space (under the preemption bound) was
  /// enumerated without hitting max_executions.
  bool complete = false;
  std::uint64_t executions = 0;

  /// Replayable identity of the failing execution: the exact decision
  /// sequence (scheduling picks as thread ids, read choices as message
  /// indices) plus the seed that produced it (PCT mode).
  std::vector<std::uint32_t> decisions;
  std::uint64_t failing_seed = 0;

  /// Human-readable schedule trace of the failing execution, and a hash
  /// over the event stream — two runs produced the identical interleaving
  /// iff the hashes match.
  std::string trace;
  std::uint64_t trace_hash = 0;
};

// --------------------------------------------------------------------------
// Harness surface.

class Sched;

/// Handed to the program builder each execution. The builder constructs
/// fresh shared state (runs in "direct" mode: atomics behave plainly),
/// registers the virtual threads, and optionally a post-execution check.
class Exec {
 public:
  /// Register a virtual thread. Bodies run under the scheduler; every
  /// instrumented atomic op is a scheduling point.
  void thread(std::string name, std::function<void()> body);

  /// Register a predicate evaluated after all threads finished (direct
  /// mode). Call fail() from it to report a violation.
  void check(std::function<void()> fn);

  /// Report a violation from a thread body or a check function. Aborts
  /// the current execution and makes explore() return it as a
  /// counterexample. Safe to call from XTASK_CHECK via the fatal() hook.
  [[noreturn]] static void fail(const std::string& msg);

  /// Explicit scheduling point (models a pure compute step the scheduler
  /// may preempt).
  static void yield();

 private:
  friend class Sched;
  explicit Exec(Sched* s) : sched_(s) {}
  Sched* sched_;
};

/// Explore the program under the chosen strategy until a violation is
/// found or the strategy's budget is exhausted. `build` is invoked once
/// per execution and must deterministically construct the same program
/// (no wall-clock, no global RNG) — determinism is what makes traces
/// replayable.
ExploreResult explore(const ExploreOptions& opts,
                      const std::function<void(Exec&)>& build);

/// Re-run one execution following a recorded decision list exactly.
/// Returns that execution's result (violation state, trace, hash).
ExploreResult replay(const ExploreOptions& opts,
                     const std::function<void(Exec&)>& build,
                     const std::vector<std::uint32_t>& decisions);

/// Entry point for common.hpp's fatal() under XTASK_MODEL_CHECK: turn a
/// failed XTASK_CHECK inside checked code into a model-checking violation
/// when an execution is active; fall through (caller aborts) otherwise.
void on_fatal(const char* msg) noexcept;

// --------------------------------------------------------------------------
// Scheduler core. xatomic<T> calls into this; tests use explore()/replay().

class Sched {
 public:
  /// The active scheduler, non-null between explore() entry and exit.
  static Sched* active() noexcept { return active_; }

  /// True when called from inside a virtual thread (instrumented ops go
  /// through the model); false in direct mode (builder / check phase).
  bool in_vthread() const noexcept { return current_ >= 0; }

  /// Monotone id of the current execution; locations lazily re-register
  /// when it changes (see xatomic<T>::ensure_registered).
  std::uint64_t run_id() const noexcept { return run_id_; }

  /// Global step counter (one tick per scheduling point); the oracle uses
  /// it to timestamp operation invocations/responses.
  std::uint64_t step() const noexcept { return step_; }

  /// Register a fresh atomic location for this execution. Returns its id.
  std::uint32_t register_loc(std::uint64_t initial_repr);

  /// Scheduling point: may switch to another virtual thread. Called by
  /// every instrumented op before it executes; no-op in direct mode.
  void schedule_point();

  /// Number of messages currently in `loc`'s modification order.
  std::uint32_t history_size(std::uint32_t loc) const noexcept;

  /// Model a store. Appends a message; returns its index.
  std::uint32_t on_store(std::uint32_t loc, bool release, bool seq_cst,
                         std::uint64_t repr);

  /// Model a load: pick (explore/replay) which message to read among the
  /// coherence-permitted ones; returns its index.
  std::uint32_t on_load(std::uint32_t loc, bool acquire, bool seq_cst);

  /// Model a successful RMW: reads the latest message, appends the new
  /// one (continuing the release sequence). Returns the read index; the
  /// written message is the one after it.
  std::uint32_t on_rmw(std::uint32_t loc, bool acquire, bool release,
                       bool seq_cst, std::uint64_t repr);

  /// Model a failed RMW (CAS whose expected/current mismatch): a load
  /// that always reads the latest message. Returns its index.
  std::uint32_t on_rmw_fail(std::uint32_t loc, bool acquire);

  /// Trace annotation from harness code (no scheduling effect).
  void note(const std::string& text);

 private:
  friend class Exec;
  friend ExploreResult explore(const ExploreOptions&,
                               const std::function<void(Exec&)>&);
  friend ExploreResult replay(const ExploreOptions&,
                              const std::function<void(Exec&)>&,
                              const std::vector<std::uint32_t>&);
  friend void on_fatal(const char* msg) noexcept;

  struct Impl;
  explicit Sched(const ExploreOptions& opts);
  ~Sched();
  Sched(const Sched&) = delete;
  Sched& operator=(const Sched&) = delete;

  /// Run one execution of `build`. Returns true when a violation fired.
  bool run_once(const std::function<void(Exec&)>& build);

  /// DFS bookkeeping: advance to the next unexplored branch. False when
  /// the space is exhausted.
  bool dfs_advance();

  [[noreturn]] void fail_current(const std::string& msg);
  void yield_current();
  std::uint32_t choose(std::uint32_t num_choices, bool is_schedule,
                       const std::uint32_t* values);

  std::unique_ptr<Impl> impl_;
  static thread_local Sched* active_;
  int current_ = -1;  // running vthread index, -1 = controller/direct
  std::uint64_t run_id_ = 0;
  std::uint64_t step_ = 0;
};

}  // namespace xtask::xcheck
