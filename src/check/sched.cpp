#include "check/sched.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "core/common.hpp"  // fatal_hook
#include "sim/fiber.hpp"

namespace xtask::xcheck {

thread_local Sched* Sched::active_ = nullptr;

namespace {

/// Thrown by fail() outside a virtual thread (builder / check phase) to
/// unwind back into run_once(). Inside a vthread the fiber switch, not an
/// exception, aborts the execution (exceptions cannot cross fiber stacks).
struct ViolationAbort {};

/// SplitMix64: deterministic per-seed stream for PCT. Self-contained so
/// the checker does not depend on common.hpp (which, under
/// XTASK_MODEL_CHECK, depends back on this file's header).
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() noexcept {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }
};

std::uint32_t view_get(const View& v, std::uint32_t loc) noexcept {
  return loc < v.size() ? v[loc] : 0;
}

void view_raise(View& v, std::uint32_t loc, std::uint32_t val) {
  if (loc >= v.size()) v.resize(loc + 1, 0);
  if (v[loc] < val) v[loc] = val;
}

void view_join(View& dst, const View& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    if (dst[i] < src[i]) dst[i] = src[i];
}

enum class Ev : std::uint8_t {
  kRun,      // a = thread index resumed
  kStore,    // loc, a = msg index, repr
  kLoad,     // loc, a = msg index read, repr
  kRmw,      // loc, a = msg index written, repr (new value)
  kRmwFail,  // loc, a = msg index read, repr
  kNote,     // a = index into note strings
  kFail,     // a = index into note strings
};

struct Event {
  Ev kind;
  std::int16_t tid;
  std::uint32_t loc;
  std::uint32_t a;
  std::uint64_t repr;
};

/// PCT change points are drawn over a fixed step horizon so an execution's
/// schedule is a function of its seed alone — nothing adapts across
/// iterations, which is what makes "re-run with the printed seed" land on
/// the bit-identical interleaving.
constexpr std::uint64_t kPctHorizon = 4096;

}  // namespace

// --------------------------------------------------------------------------
// Impl state.

struct Sched::Impl {
  struct VThread {
    std::string name;
    std::function<void()> body;
    sim::Fiber fiber;
    Sched* sched = nullptr;  // entry-arg backpointer
    int idx = 0;
    bool finished = false;
    View view;
  };

  struct Msg {
    View rel_view;  // writer's view; empty for relaxed stores
    bool is_release = false;
    std::uint64_t repr = 0;
  };
  struct Loc {
    std::vector<Msg> msgs;  // index = modification-order position
  };

  struct Frame {
    std::uint32_t n;       // candidates at this decision point
    std::uint32_t chosen;  // branch currently being explored
  };

  enum class Strategy { kDfs, kPct, kReplay };

  explicit Impl(const ExploreOptions& o) : opts(o) {}

  ExploreOptions opts;
  Strategy strategy = Strategy::kDfs;

  // --- per-execution state (reset by run_once) --------------------------
  std::vector<std::unique_ptr<VThread>> threads;
  std::vector<std::function<void()>> checks;
  std::vector<Loc> locs;
  View sc_view;
  sim::FiberContext controller;
  int last_ran = -1;
  int preemptions = 0;
  bool violation = false;
  std::string message;
  std::vector<std::uint32_t> decisions;
  std::vector<Event> events;
  std::vector<std::string> notes;
  std::uint64_t trace_hash = 0;

  // --- DFS --------------------------------------------------------------
  std::vector<Frame> stack;
  std::size_t cursor = 0;

  // --- PCT --------------------------------------------------------------
  std::uint64_t exec_seed = 0;
  std::unique_ptr<Rng> rng;
  std::vector<std::int64_t> prio;
  std::vector<std::uint64_t> change_points;  // sorted
  std::size_t next_change = 0;
  std::uint64_t sched_ticks = 0;

  // --- replay -----------------------------------------------------------
  const std::vector<std::uint32_t>* replay = nullptr;
  std::size_t replay_cursor = 0;

  static void entry(void* p);  // vthread fiber entry (never returns)
  void fill(ExploreResult& res) const;

  void hash_event(const Event& e) noexcept {
    std::uint64_t h = trace_hash ? trace_hash : 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.tid)));
    mix(e.loc);
    mix(e.a);
    mix(e.repr);
    trace_hash = h;
  }

  void event(Ev kind, int tid, std::uint32_t loc, std::uint32_t a,
             std::uint64_t repr) {
    Event e{kind, static_cast<std::int16_t>(tid), loc, a, repr};
    hash_event(e);
    if (opts.record_trace) events.push_back(e);
  }

  std::string format_trace() const {
    std::string out;
    char buf[256];
    for (const Event& e : events) {
      const char* name = (e.tid >= 0 &&
                          static_cast<std::size_t>(e.tid) < threads.size())
                             ? threads[e.tid]->name.c_str()
                             : "?";
      switch (e.kind) {
        case Ev::kRun:
          std::snprintf(buf, sizeof buf, "-- run T%d(%s)\n", e.tid, name);
          break;
        case Ev::kStore:
          std::snprintf(buf, sizeof buf,
                        "T%d(%s) store  loc#%u msg#%u := 0x%" PRIx64 "\n",
                        e.tid, name, e.loc, e.a, e.repr);
          break;
        case Ev::kLoad:
          std::snprintf(buf, sizeof buf,
                        "T%d(%s) load   loc#%u msg#%u  = 0x%" PRIx64 "%s\n",
                        e.tid, name, e.loc, e.a, e.repr,
                        e.a + 1 < locs[e.loc].msgs.size() ? "  [stale]" : "");
          break;
        case Ev::kRmw:
          std::snprintf(buf, sizeof buf,
                        "T%d(%s) rmw    loc#%u msg#%u := 0x%" PRIx64 "\n",
                        e.tid, name, e.loc, e.a, e.repr);
          break;
        case Ev::kRmwFail:
          std::snprintf(buf, sizeof buf,
                        "T%d(%s) rmw-f  loc#%u msg#%u  = 0x%" PRIx64 "\n",
                        e.tid, name, e.loc, e.a, e.repr);
          break;
        case Ev::kNote:
          std::snprintf(buf, sizeof buf, "T%d(%s) note   %s\n", e.tid, name,
                        notes[e.a].c_str());
          break;
        case Ev::kFail:
          std::snprintf(buf, sizeof buf, "T%d VIOLATION: %s\n", e.tid,
                        notes[e.a].c_str());
          break;
      }
      out += buf;
    }
    return out;
  }
};

// --------------------------------------------------------------------------
// Exec surface.

void Exec::thread(std::string name, std::function<void()> body) {
  auto vt = std::make_unique<Sched::Impl::VThread>();
  vt->name = std::move(name);
  vt->body = std::move(body);
  vt->sched = sched_;
  vt->idx = static_cast<int>(sched_->impl_->threads.size());
  sched_->impl_->threads.push_back(std::move(vt));
}

void Exec::check(std::function<void()> fn) {
  sched_->impl_->checks.push_back(std::move(fn));
}

void Exec::fail(const std::string& msg) {
  Sched* s = Sched::active();
  if (s == nullptr) {
    std::fprintf(stderr, "xcheck fail() with no active scheduler: %s\n",
                 msg.c_str());
    std::abort();
  }
  s->fail_current(msg);
  std::abort();  // unreachable; fail_current never returns
}

void Exec::yield() {
  Sched* s = Sched::active();
  if (s != nullptr) s->schedule_point();
}

void on_fatal(const char* msg) noexcept {
  Sched* s = Sched::active();
  // Only intercept inside a virtual thread: there the fiber switch (not
  // an exception) aborts the execution, which is noexcept-safe. A failed
  // check in direct mode falls through to fatal()'s abort.
  if (s != nullptr && s->in_vthread()) s->fail_current(msg);
}

// --------------------------------------------------------------------------
// Sched: lifecycle.

Sched::Sched(const ExploreOptions& opts) : impl_(new Impl(opts)) {
  if (active_ != nullptr) {
    std::fprintf(stderr, "xcheck: nested explore() is not supported\n");
    std::abort();
  }
  active_ = this;
  xtask::detail::fatal_hook = &on_fatal;
}

Sched::~Sched() {
  xtask::detail::fatal_hook = nullptr;
  active_ = nullptr;
}

std::uint32_t Sched::register_loc(std::uint64_t initial_repr) {
  impl_->locs.push_back(Impl::Loc{});
  Impl::Loc& l = impl_->locs.back();
  l.msgs.push_back(Impl::Msg{View{}, false, initial_repr});
  return static_cast<std::uint32_t>(impl_->locs.size() - 1);
}

std::uint32_t Sched::history_size(std::uint32_t loc) const noexcept {
  return static_cast<std::uint32_t>(impl_->locs[loc].msgs.size());
}

void Sched::note(const std::string& text) {
  impl_->notes.push_back(text);
  impl_->event(Ev::kNote, current_, 0,
               static_cast<std::uint32_t>(impl_->notes.size() - 1), 0);
}

// --------------------------------------------------------------------------
// Decisions.

std::uint32_t Sched::choose(std::uint32_t num_choices, bool is_schedule,
                            const std::uint32_t* values) {
  Impl& im = *impl_;
  std::uint32_t idx = 0;
  switch (im.strategy) {
    case Impl::Strategy::kDfs: {
      if (num_choices > 1) {
        if (im.cursor < im.stack.size()) {
          Impl::Frame& f = im.stack[im.cursor];
          if (f.n != num_choices) {
            // The builder was nondeterministic — the exploration's one
            // hard precondition. Surface it loudly.
            fail_current("xcheck: nondeterministic program (decision arity "
                         "changed between executions)");
          }
          idx = f.chosen;
        } else {
          im.stack.push_back(Impl::Frame{num_choices, 0});
          idx = 0;
        }
        ++im.cursor;
      }
      break;
    }
    case Impl::Strategy::kPct: {
      if (num_choices > 1) {
        if (is_schedule) {
          // Never reached: PCT schedules by priority, not by choose().
          idx = static_cast<std::uint32_t>(im.rng->below(num_choices));
        } else {
          // Reads: bias toward the latest message (the common-case
          // behavior) but keep every stale message reachable.
          idx = (im.rng->next() & 1)
                    ? 0
                    : static_cast<std::uint32_t>(im.rng->below(num_choices));
        }
      }
      break;
    }
    case Impl::Strategy::kReplay: {
      if (im.replay_cursor >= im.replay->size())
        fail_current("xcheck replay: decision list exhausted");
      const std::uint32_t want = (*im.replay)[im.replay_cursor++];
      bool found = false;
      for (std::uint32_t i = 0; i < num_choices; ++i) {
        if (values[i] == want) {
          idx = i;
          found = true;
          break;
        }
      }
      if (!found) fail_current("xcheck replay: divergence from recording");
      im.decisions.push_back(want);
      return idx;
    }
  }
  im.decisions.push_back(values[idx]);
  return idx;
}

// --------------------------------------------------------------------------
// Scheduling.

void Sched::schedule_point() {
  if (!in_vthread()) return;
  ++step_;
  if (step_ > impl_->opts.max_steps)
    fail_current("xcheck: step budget exceeded (livelock or unbounded loop "
                 "in the checked harness?)");
  Impl::VThread& self = *impl_->threads[static_cast<std::size_t>(current_)];
  sim::Fiber::switch_to(&self.fiber.context(), &impl_->controller);
}

void Sched::fail_current(const std::string& msg) {
  Impl& im = *impl_;
  im.violation = true;
  im.message = msg;
  im.notes.push_back(msg);
  im.event(Ev::kFail, current_, 0,
           static_cast<std::uint32_t>(im.notes.size() - 1), 0);
  if (!in_vthread()) throw ViolationAbort{};
  Impl::VThread& self = *im.threads[static_cast<std::size_t>(current_)];
  self.finished = true;
  sim::Fiber::switch_to(&self.fiber.context(), &im.controller);
  std::abort();  // a failed thread is never resumed
}

void Sched::Impl::entry(void* p) {
  auto* vt = static_cast<VThread*>(p);
  vt->body();
  vt->finished = true;
  // Release captured state while still alive, then park forever.
  vt->body = nullptr;
  sim::Fiber::switch_to(&vt->fiber.context(), &vt->sched->impl_->controller);
}

bool Sched::run_once(const std::function<void(Exec&)>& build) {
  Impl& im = *impl_;
  ++run_id_;
  step_ = 0;
  im.threads.clear();
  im.checks.clear();
  im.locs.clear();
  im.sc_view.clear();
  im.last_ran = -1;
  im.preemptions = 0;
  im.violation = false;
  im.message.clear();
  im.decisions.clear();
  im.events.clear();
  im.notes.clear();
  im.trace_hash = 0;
  im.cursor = 0;
  im.replay_cursor = 0;
  im.sched_ticks = 0;

  try {
    Exec ex(this);
    build(ex);
  } catch (ViolationAbort&) {
    return true;
  }

  const int n = static_cast<int>(im.threads.size());
  for (auto& vt : im.threads)
    vt->fiber.create(&Impl::entry, vt.get(), 128 * 1024);

  if (im.strategy == Impl::Strategy::kPct) {
    im.rng = std::make_unique<Rng>(im.exec_seed);
    // Distinct base priorities: a random permutation of [1, n].
    im.prio.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) im.prio[static_cast<std::size_t>(i)] = i + 1;
    for (int i = n - 1; i > 0; --i)
      std::swap(im.prio[static_cast<std::size_t>(i)],
                im.prio[im.rng->below(static_cast<std::uint64_t>(i) + 1)]);
    im.change_points.clear();
    for (int i = 0; i + 1 < im.opts.pct_depth; ++i)
      im.change_points.push_back(im.rng->below(kPctHorizon));
    std::sort(im.change_points.begin(), im.change_points.end());
    im.next_change = 0;
  }

  // Controller loop: pick a runnable thread, run it to its next
  // scheduling point, repeat. Decisions happen here (and in choose()).
  std::uint32_t cand[256];
  for (;;) {
    if (im.violation) break;
    std::uint32_t ncand = 0;
    const bool last_runnable =
        im.last_ran >= 0 &&
        !im.threads[static_cast<std::size_t>(im.last_ran)]->finished;
    if (im.strategy == Impl::Strategy::kDfs) {
      // Default first = keep running the last thread; alternatives are
      // preemptions and only offered while the budget lasts.
      if (last_runnable) {
        cand[ncand++] = static_cast<std::uint32_t>(im.last_ran);
        if (im.preemptions < im.opts.preemption_bound) {
          for (int i = 0; i < n; ++i)
            if (i != im.last_ran && !im.threads[static_cast<std::size_t>(i)]
                                         ->finished)
              cand[ncand++] = static_cast<std::uint32_t>(i);
        }
      } else {
        for (int i = 0; i < n; ++i)
          if (!im.threads[static_cast<std::size_t>(i)]->finished)
            cand[ncand++] = static_cast<std::uint32_t>(i);
      }
    } else {
      for (int i = 0; i < n; ++i)
        if (!im.threads[static_cast<std::size_t>(i)]->finished)
          cand[ncand++] = static_cast<std::uint32_t>(i);
    }
    if (ncand == 0) break;  // all threads finished

    int next;
    if (im.strategy == Impl::Strategy::kPct) {
      std::uint32_t best = 0;
      for (std::uint32_t i = 1; i < ncand; ++i)
        if (im.prio[cand[i]] > im.prio[cand[best]]) best = i;
      next = static_cast<int>(cand[best]);
      im.decisions.push_back(static_cast<std::uint32_t>(next));
      if (im.next_change < im.change_points.size() &&
          im.sched_ticks == im.change_points[im.next_change]) {
        // PCT change point: drop the running thread below everyone.
        im.prio[static_cast<std::uint32_t>(next)] =
            -static_cast<std::int64_t>(++im.next_change);
      }
      ++im.sched_ticks;
    } else {
      next = static_cast<int>(cand[choose(ncand, /*is_schedule=*/true, cand)]);
    }
    if (last_runnable && next != im.last_ran) ++im.preemptions;
    if (next != im.last_ran)
      im.event(Ev::kRun, next, 0, 0, 0);
    im.last_ran = next;

    current_ = next;
    Impl::VThread& vt = *im.threads[static_cast<std::size_t>(next)];
    sim::Fiber::switch_to(&im.controller, &vt.fiber.context());
    current_ = -1;
  }

  if (!im.violation) {
    try {
      for (auto& c : im.checks) c();
    } catch (ViolationAbort&) {
    }
  }
  return im.violation;
}

bool Sched::dfs_advance() {
  Impl& im = *impl_;
  while (!im.stack.empty()) {
    Impl::Frame& f = im.stack.back();
    if (f.chosen + 1 < f.n) {
      ++f.chosen;
      return true;
    }
    im.stack.pop_back();
  }
  return false;
}

// --------------------------------------------------------------------------
// Memory model.

std::uint32_t Sched::on_store(std::uint32_t loc, bool release, bool seq_cst,
                              std::uint64_t repr) {
  Impl& im = *impl_;
  Impl::VThread& t = *im.threads[static_cast<std::size_t>(current_)];
  Impl::Loc& l = im.locs[loc];
  const auto k = static_cast<std::uint32_t>(l.msgs.size());
  view_raise(t.view, loc, k);
  Impl::Msg m;
  m.repr = repr;
  m.is_release = release || seq_cst;
  if (seq_cst) view_join(im.sc_view, t.view);
  if (m.is_release) m.rel_view = t.view;
  l.msgs.push_back(std::move(m));
  im.event(Ev::kStore, current_, loc, k, repr);
  return k;
}

std::uint32_t Sched::on_load(std::uint32_t loc, bool acquire, bool seq_cst) {
  Impl& im = *impl_;
  Impl::VThread& t = *im.threads[static_cast<std::size_t>(current_)];
  if (seq_cst) view_join(t.view, im.sc_view);
  Impl::Loc& l = im.locs[loc];
  const auto high = static_cast<std::uint32_t>(l.msgs.size() - 1);
  const std::uint32_t low = view_get(t.view, loc);
  std::uint32_t k = high;
  if (low < high) {
    // Explorable read choice: candidates from the latest (the expected
    // common case) back to the oldest coherence-permitted message.
    std::uint32_t vals[512];
    const std::uint32_t m =
        std::min<std::uint32_t>(high - low + 1, 512);
    for (std::uint32_t i = 0; i < m; ++i) vals[i] = high - i;
    k = vals[choose(m, /*is_schedule=*/false, vals)];
  }
  view_raise(t.view, loc, k);
  const Impl::Msg& msg = l.msgs[k];
  if ((acquire || seq_cst) && msg.is_release) view_join(t.view, msg.rel_view);
  im.event(Ev::kLoad, current_, loc, k, msg.repr);
  return k;
}

std::uint32_t Sched::on_rmw(std::uint32_t loc, bool acquire, bool release,
                            bool seq_cst, std::uint64_t repr) {
  Impl& im = *impl_;
  Impl::VThread& t = *im.threads[static_cast<std::size_t>(current_)];
  Impl::Loc& l = im.locs[loc];
  const auto read = static_cast<std::uint32_t>(l.msgs.size() - 1);
  view_raise(t.view, loc, read);
  const bool read_release = l.msgs[read].is_release;
  if ((acquire || seq_cst) && read_release)
    view_join(t.view, l.msgs[read].rel_view);
  if (seq_cst) view_join(t.view, im.sc_view);

  const std::uint32_t k = read + 1;
  view_raise(t.view, loc, k);
  Impl::Msg m;
  m.repr = repr;
  // An RMW continues the release sequence of the message it read: an
  // acquire load of this message synchronizes with the original release
  // store even when the RMW itself is relaxed.
  m.is_release = release || seq_cst || read_release;
  if (release || seq_cst) {
    m.rel_view = t.view;
    if (read_release) view_join(m.rel_view, l.msgs[read].rel_view);
  } else if (read_release) {
    m.rel_view = l.msgs[read].rel_view;
  }
  if (seq_cst) view_join(im.sc_view, t.view);
  l.msgs.push_back(std::move(m));
  im.event(Ev::kRmw, current_, loc, k, repr);
  return read;
}

std::uint32_t Sched::on_rmw_fail(std::uint32_t loc, bool acquire) {
  Impl& im = *impl_;
  Impl::VThread& t = *im.threads[static_cast<std::size_t>(current_)];
  Impl::Loc& l = im.locs[loc];
  const auto k = static_cast<std::uint32_t>(l.msgs.size() - 1);
  view_raise(t.view, loc, k);
  if (acquire && l.msgs[k].is_release) view_join(t.view, l.msgs[k].rel_view);
  im.event(Ev::kRmwFail, current_, loc, k, l.msgs[k].repr);
  return k;
}

// --------------------------------------------------------------------------
// Exploration drivers.

void Sched::Impl::fill(ExploreResult& res) const {
  res.violation = violation;
  res.message = message;
  res.decisions = decisions;
  res.trace_hash = trace_hash;
  if (opts.record_trace) res.trace = format_trace();
}

ExploreResult explore(const ExploreOptions& opts,
                      const std::function<void(Exec&)>& build) {
  Sched s(opts);
  Sched::Impl& im = *s.impl_;
  ExploreResult res;
  if (opts.mode == ExploreOptions::Mode::kExhaustive) {
    im.strategy = Sched::Impl::Strategy::kDfs;
    for (;;) {
      ++res.executions;
      if (s.run_once(build)) {
        im.fill(res);
        return res;
      }
      if (!s.dfs_advance()) {
        res.complete = true;
        break;
      }
      if (res.executions >= opts.max_executions) break;
    }
  } else {
    im.strategy = Sched::Impl::Strategy::kPct;
    for (std::uint64_t i = 0; i < opts.iterations; ++i) {
      im.exec_seed = opts.seed + i;
      ++res.executions;
      if (s.run_once(build)) {
        im.fill(res);
        res.failing_seed = im.exec_seed;
        return res;
      }
    }
  }
  return res;
}

ExploreResult replay(const ExploreOptions& opts,
                     const std::function<void(Exec&)>& build,
                     const std::vector<std::uint32_t>& decisions) {
  Sched s(opts);
  Sched::Impl& im = *s.impl_;
  im.strategy = Sched::Impl::Strategy::kReplay;
  im.replay = &decisions;
  ExploreResult res;
  res.executions = 1;
  s.run_once(build);
  im.fill(res);
  return res;
}

}  // namespace xtask::xcheck
