// Instrumented replacement for std::atomic<T> under -DXTASK_MODEL_CHECK.
//
// The production `xtask::atomic` alias (common.hpp) resolves here only in
// model-checking builds. Each operation:
//
//   1. lazily registers the location with the active scheduler (once per
//      execution — the same object is re-registered fresh each run),
//   2. hits a scheduling point (the checker may switch threads), and
//   3. runs through the view-based memory model (sched.hpp), which decides
//      which message a load observes.
//
// Outside a virtual thread (no active scheduler, or the builder / check
// phase of an execution) operations act directly on a plain value — so
// constructors and post-run assertions behave like ordinary code.
//
// Modeling notes (see DESIGN.md "Model checking the lock-less core"):
//  * compare_exchange_weak is modeled as strong: a spurious failure is a
//    pure load followed by a retry, which explores no new states in the
//    checked retry loops.
//  * A failed CAS re-reads the *latest* message (slightly stronger than
//    the architecture; strengthening never hides a violation of the
//    protocols checked here, which only act on CAS success).
//  * T must be trivially copyable and at most 8 bytes (true for every
//    atomic in the runtime's lock-less core).
#pragma once

#include <atomic>  // std::memory_order
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "check/sched.hpp"

namespace xtask::xcheck {

template <typename T>
class xatomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "xcheck models word-sized trivially-copyable atomics only");

 public:
  constexpr xatomic() noexcept : value_{} {}
  constexpr xatomic(T v) noexcept : value_(v) {}  // NOLINT(runtime/explicit)
  xatomic(const xatomic&) = delete;
  xatomic& operator=(const xatomic&) = delete;

  bool is_lock_free() const noexcept { return true; }

  T load(std::memory_order mo = std::memory_order_seq_cst) const noexcept {
    Sched* s = modeled();
    if (s == nullptr) return value_;
    s->schedule_point();
    const std::uint32_t idx = s->on_load(loc_, is_acq(mo), is_sc(mo));
    return hist_[idx];
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    Sched* s = modeled();
    if (s == nullptr) {
      value_ = v;
      return;
    }
    s->schedule_point();
    s->on_store(loc_, is_rel(mo), is_sc(mo), repr(v));
    hist_.push_back(v);
    value_ = v;
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    Sched* s = modeled();
    if (s == nullptr) {
      T old = value_;
      value_ = v;
      return old;
    }
    s->schedule_point();
    const std::uint32_t read =
        s->on_rmw(loc_, is_acq(mo), is_rel(mo), is_sc(mo), repr(v));
    T old = hist_[read];
    hist_.push_back(v);
    value_ = v;
    return old;
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) noexcept {
    Sched* s = modeled();
    if (s == nullptr) {
      if (repr(value_) == repr(expected)) {
        value_ = desired;
        return true;
      }
      expected = value_;
      return false;
    }
    s->schedule_point();
    const T cur = hist_.back();
    if (repr(cur) == repr(expected)) {
      s->on_rmw(loc_, is_acq(success), is_rel(success), is_sc(success),
                repr(desired));
      hist_.push_back(desired);
      value_ = desired;
      return true;
    }
    const std::uint32_t idx = s->on_rmw_fail(loc_, is_acq(failure));
    expected = hist_[idx];
    return false;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order) noexcept {
    return compare_exchange_strong(expected, desired, order,
                                   fail_order(order));
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) noexcept {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order) noexcept {
    return compare_exchange_strong(expected, desired, order);
  }

  template <typename U = T>
    requires std::is_integral_v<U>
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    return rmw_op(mo, [d](T cur) { return static_cast<T>(cur + d); });
  }

  template <typename U = T>
    requires std::is_integral_v<U>
  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    return rmw_op(mo, [d](T cur) { return static_cast<T>(cur - d); });
  }

  template <typename U = T>
    requires std::is_integral_v<U>
  T fetch_or(T d, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    return rmw_op(mo, [d](T cur) { return static_cast<T>(cur | d); });
  }

  template <typename U = T>
    requires std::is_integral_v<U>
  T fetch_and(T d, std::memory_order mo = std::memory_order_seq_cst) noexcept {
    return rmw_op(mo, [d](T cur) { return static_cast<T>(cur & d); });
  }

  T operator=(T v) noexcept {
    store(v);
    return v;
  }
  operator T() const noexcept { return load(); }

  T operator++() noexcept { return fetch_add(T{1}) + T{1}; }
  T operator--() noexcept { return fetch_sub(T{1}) - T{1}; }
  T operator++(int) noexcept { return fetch_add(T{1}); }
  T operator--(int) noexcept { return fetch_sub(T{1}); }

 private:
  static std::uint64_t repr(T v) noexcept {
    std::uint64_t r = 0;
    std::memcpy(&r, &v, sizeof(T));
    return r;
  }
  static constexpr bool is_acq(std::memory_order mo) noexcept {
    return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
           mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
  }
  static constexpr bool is_rel(std::memory_order mo) noexcept {
    return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
           mo == std::memory_order_seq_cst;
  }
  static constexpr bool is_sc(std::memory_order mo) noexcept {
    return mo == std::memory_order_seq_cst;
  }
  static constexpr std::memory_order fail_order(std::memory_order mo) noexcept {
    return mo == std::memory_order_acq_rel ? std::memory_order_acquire
           : mo == std::memory_order_release ? std::memory_order_relaxed
                                             : mo;
  }

  /// Non-null iff the access must go through the model: an exploration is
  /// active *and* we are inside a virtual thread. Registers the location
  /// for the current execution on first modeled access.
  Sched* modeled() const noexcept {
    Sched* s = Sched::active();
    if (s == nullptr || !s->in_vthread()) return nullptr;
    if (reg_run_ != s->run_id()) {
      loc_ = s->register_loc(repr(value_));
      reg_run_ = s->run_id();
      hist_.clear();
      hist_.push_back(value_);
    }
    return s;
  }

  template <typename F>
  T rmw_op(std::memory_order mo, F next) noexcept {
    Sched* s = modeled();
    if (s == nullptr) {
      T old = value_;
      value_ = next(old);
      return old;
    }
    s->schedule_point();
    const T cur = hist_.back();
    const T nv = next(cur);
    s->on_rmw(loc_, is_acq(mo), is_rel(mo), is_sc(mo), repr(nv));
    hist_.push_back(nv);
    value_ = nv;
    return cur;
  }

  T value_;  // latest committed value: direct-mode truth, initial message
  mutable std::uint32_t loc_ = 0;
  mutable std::uint64_t reg_run_ = 0;   // run_id the location was registered in
  mutable std::vector<T> hist_;         // values parallel to the msg list
};

}  // namespace xtask::xcheck
