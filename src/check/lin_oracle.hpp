// A small linearizability oracle: record an operation history while the
// checker explores an interleaving, then search for a permutation of the
// completed operations that a sequential specification accepts
// (Wing & Gill style).
//
// Precedence is deliberately restricted to per-thread *program order*, not
// wall-clock real-time order between threads. Under the weak-memory model
// a completed push's slot store may legitimately not yet be visible to a
// pop that has no synchronizing edge to it — wall-clock precedence would
// flag that allowed behavior as a violation. Program-order precedence
// still rejects the bugs that matter: lost values, duplicated values, and
// reordering within a thread's own operations.
//
// Specs are tiny structs supplied by the test:
//
//   struct QueueSpec {
//     using State = std::deque<std::uint64_t>;
//     State initial() const { return {}; }
//     // True iff `op` is legal from `s` (and mutate `s` accordingly).
//     bool apply(State& s, const OpRecord& op) const;
//   };
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/sched.hpp"

namespace xtask::xcheck {

struct OpRecord {
  int thread = 0;           // logical thread id (per-thread order source)
  std::uint64_t inv = 0;    // scheduler step at invocation
  std::uint64_t res = 0;    // scheduler step at response
  bool complete = false;
  std::uint64_t kind = 0;   // spec-defined op code
  std::uint64_t arg = 0;
  std::uint64_t ret = 0;
  std::string label;        // human-readable, for failure messages
};

/// Append-only operation log. Safe to share across virtual threads (the
/// checker is single-OS-threaded); clear() between executions.
class HistoryLog {
 public:
  void clear() { ops_.clear(); }

  std::size_t invoke(int thread, std::uint64_t kind, std::uint64_t arg,
                     std::string label) {
    OpRecord r;
    r.thread = thread;
    r.kind = kind;
    r.arg = arg;
    r.label = std::move(label);
    Sched* s = Sched::active();
    r.inv = s != nullptr ? s->step() : ops_.size();
    ops_.push_back(std::move(r));
    return ops_.size() - 1;
  }

  void respond(std::size_t id, std::uint64_t ret) {
    OpRecord& r = ops_[id];
    r.ret = ret;
    r.complete = true;
    Sched* s = Sched::active();
    r.res = s != nullptr ? s->step() : id;
  }

  const std::vector<OpRecord>& ops() const noexcept { return ops_; }

  std::string format() const {
    std::string out;
    for (const OpRecord& r : ops_) {
      out += "  T" + std::to_string(r.thread) + " " + r.label +
             (r.complete ? "" : "  [pending]") + "\n";
    }
    return out;
  }

 private:
  std::vector<OpRecord> ops_;
};

struct LinResult {
  bool ok = false;
  bool conclusive = true;  // false when the search budget ran out
  std::string message;
};

namespace detail {

template <typename Spec>
bool lin_dfs(const Spec& spec, typename Spec::State state,
             const std::vector<std::vector<const OpRecord*>>& per_thread,
             std::vector<std::size_t>& pos, std::size_t remaining,
             std::uint64_t& budget) {
  if (remaining == 0) return true;
  if (budget == 0) return false;
  --budget;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    if (pos[t] >= per_thread[t].size()) continue;
    const OpRecord* op = per_thread[t][pos[t]];
    typename Spec::State next = state;
    if (!spec.apply(next, *op)) continue;
    ++pos[t];
    if (lin_dfs(spec, std::move(next), per_thread, pos, remaining - 1,
                budget))
      return true;
    --pos[t];
  }
  return false;
}

}  // namespace detail

/// Search for a linearization of the completed operations in `log` under
/// `spec`, honoring per-thread program order. Incomplete (pending)
/// operations are ignored: a crashed/preempted-forever op has no response
/// and may linearize anywhere or nowhere — the specs used here only make
/// claims about completed operations.
template <typename Spec>
LinResult check_linearizable(const Spec& spec, const HistoryLog& log) {
  std::vector<std::vector<const OpRecord*>> per_thread;
  std::size_t total = 0;
  for (const OpRecord& r : log.ops()) {
    if (!r.complete) continue;
    const auto t = static_cast<std::size_t>(r.thread);
    if (t >= per_thread.size()) per_thread.resize(t + 1);
    per_thread[t].push_back(&r);  // log order == program order per thread
    ++total;
  }
  std::vector<std::size_t> pos(per_thread.size(), 0);
  std::uint64_t budget = 4'000'000;
  LinResult res;
  res.ok = detail::lin_dfs(spec, spec.initial(), per_thread, pos, total,
                           budget);
  if (!res.ok) {
    if (budget == 0) {
      // Ambiguous: ran out before exhausting permutations. Report as
      // inconclusive-but-passing so a huge history cannot fake a bug.
      res.ok = true;
      res.conclusive = false;
      res.message = "linearizability search budget exceeded (inconclusive)";
    } else {
      res.message =
          "no linearization of the completed history exists:\n" + log.format();
    }
  }
  return res;
}

}  // namespace xtask::xcheck
