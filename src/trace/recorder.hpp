// Lock-less trace recorder for the real runtime (trace=record). The hard
// constraint it designs around: Task is packed to exactly three cache
// lines with zero slack, so a trace id cannot live in the task descriptor.
// Identity instead flows through a fixed-size lock-free inflight map
// (Task* → id): the spawning worker inserts at allocation, the executing
// worker looks up (and erases) at execution start. The queue's
// release/acquire transfer of the Task* orders the insert before the
// lookup; the map's own release CAS / acquire load covers the same-thread
// overflow-inline path for free.
//
// Everything else is single-writer: each worker appends records to its
// own padded buffer and maintains its own execution-frame stack (task
// execution nests strictly stack-like per worker — nested execs happen
// only inside taskwait/group_wait helping, taskyield, and overflow
// inlining, all within the outer body). The frame stack is what turns
// wall intervals into *self* cost: a frame's clock pauses while a nested
// child executes and while the task sits in a wait loop (on_pause /
// on_resume around taskwait polling), so the recorded cost is the cycles
// the task body itself burned — exactly what replay must re-burn.
//
// Graceful degradation, never data loss of counts: when the inflight map
// is full (or a Task* misses at exec time — the root task takes this
// path), the executing worker synthesizes a fresh id and a spawn record
// parented to its current frame, so every exec record always has a
// matching spawn and task counts stay exact; only parent attribution of
// the synthesized spawn may differ. `synthesized()` exposes how often.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "trace/format.hpp"

namespace xtask::trace {

class Recorder {
 public:
  /// `zones[w]` is worker w's NUMA zone (stamped into every record).
  Recorder(int nworkers, double cycles_per_us, std::string backend,
           std::string topology, std::vector<std::uint8_t> zones);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // --- hot-path hooks (called by the owning worker only) ------------------
  /// Task allocated on worker `w`; parent = w's current frame (0 at the
  /// root). Returns the assigned id.
  std::uint64_t on_spawn(int w, const void* task, std::uint64_t now) noexcept;
  /// One dependence item of the task `w` most recently spawned (dep
  /// records immediately follow their spawn in the worker's stream).
  void on_dep(int w, std::uint32_t mode, std::uint64_t addr) noexcept;
  void on_exec_begin(int w, const void* task, std::uint64_t now) noexcept;
  void on_exec_end(int w, std::uint64_t now) noexcept;
  /// Bracket wait loops (taskwait/group_wait): the current frame's self
  /// clock stops so polling is not billed as task work. Nest-safe.
  void on_pause(int w, std::uint64_t now) noexcept;
  void on_resume(int w, std::uint64_t now) noexcept;
  void on_steal(int w, int peer, std::uint64_t count, bool direct,
                std::uint64_t now) noexcept;
  void on_idle(int w, std::uint64_t enter, std::uint64_t exit) noexcept;

  // --- collection (quiescent: no region in flight) ------------------------
  /// Merge per-worker buffers into one Trace (worker-major order, which
  /// preserves each worker's write order as the format requires).
  Trace build() const;
  /// Drop all recorded state (per-region re-arm).
  void clear();
  /// Spawn records synthesized at exec time because the inflight map had
  /// no entry (root tasks; map overflow under extreme in-flight load).
  std::uint64_t synthesized() const noexcept;

 private:
  struct Frame {
    std::uint64_t id = 0;
    std::uint64_t begin = 0;   // wall begin
    std::uint64_t self = 0;    // accumulated self cycles
    std::uint64_t resume = 0;  // last point the self clock restarted
    std::uint32_t pause_depth = 0;
  };

  struct alignas(kCacheLine) PerWorker {
    std::vector<TraceRecord> records;
    std::vector<Frame> stack;
    std::uint64_t next_seq = 1;
    std::uint64_t last_spawn = 0;  // id for trailing dep records
    std::uint64_t synthesized = 0;
  };

  struct Slot {
    std::atomic<const void*> key{nullptr};
    std::atomic<std::uint64_t> id{0};
  };

  static constexpr std::size_t kMapSlots = 1u << 16;  // 64Ki in-flight tasks
  static constexpr std::size_t kMaxProbe = 64;
  /// Erased-slot sentinel: probes continue past it, inserts may reuse it.
  static const void* tombstone() noexcept {
    return reinterpret_cast<const void*>(~std::uintptr_t{0});
  }

  std::uint64_t fresh_id(int w) noexcept {
    PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
    return (static_cast<std::uint64_t>(w) + 1) << 40 | pw.next_seq++;
  }
  bool map_insert(const void* task, std::uint64_t id) noexcept;
  /// Find and erase; returns 0 when absent.
  std::uint64_t map_take(const void* task) noexcept;
  void append(int w, const TraceRecord& r) noexcept;

  int nworkers_;
  double cycles_per_us_;
  std::string backend_;
  std::string topology_;
  std::vector<std::uint8_t> zones_;
  std::vector<std::unique_ptr<PerWorker>> per_worker_;
  std::unique_ptr<Slot[]> map_;
};

}  // namespace xtask::trace
