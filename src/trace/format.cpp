#include "trace/format.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace xtask::trace {

namespace {

/// Meta strings (backend/topology) may not contain characters that would
/// break the line-oriented JSONL encoding; sanitize on write so a read
/// never needs escape handling (specs and topology strings are plain
/// `[-a-z0-9:=,.x]` in practice).
std::string sanitized(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (c == '"' || c == '\\' || c == '\n' || c == '\r') c = '_';
  return out;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  // SplitMix64 finalizer.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void fail(const std::string& msg) { throw TraceError(msg); }

std::string rec_prefix(std::size_t idx) {
  return "record " + std::to_string(idx) + ": ";
}

// --- minimal JSON field extraction -----------------------------------------
// The JSONL schema is flat objects with numeric and (sanitized) string
// values, so a targeted scanner is enough — no general JSON dependency.

/// Find `"key":` in `line` and return the character offset just past the
/// colon, or npos.
std::size_t find_field(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\"";
  std::size_t pos = line.find(pat);
  while (pos != std::string::npos) {
    std::size_t p = pos + pat.size();
    while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p])))
      ++p;
    if (p < line.size() && line[p] == ':') return p + 1;
    pos = line.find(pat, pos + 1);
  }
  return std::string::npos;
}

bool get_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const std::size_t p = find_field(line, key);
  if (p == std::string::npos) return false;
  std::size_t q = p;
  while (q < line.size() && std::isspace(static_cast<unsigned char>(line[q])))
    ++q;
  if (q >= line.size() || !std::isdigit(static_cast<unsigned char>(line[q])))
    return false;
  std::uint64_t v = 0;
  for (; q < line.size() && std::isdigit(static_cast<unsigned char>(line[q]));
       ++q) {
    const std::uint64_t d = static_cast<std::uint64_t>(line[q] - '0');
    if (v > (~0ull - d) / 10) return false;  // overflow: reject, don't wrap
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

bool get_double(const std::string& line, const char* key, double* out) {
  const std::size_t p = find_field(line, key);
  if (p == std::string::npos) return false;
  return std::sscanf(line.c_str() + p, " %lf", out) == 1;
}

bool get_string(const std::string& line, const char* key, std::string* out) {
  std::size_t p = find_field(line, key);
  if (p == std::string::npos) return false;
  while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p])))
    ++p;
  if (p >= line.size() || line[p] != '"') return false;
  const std::size_t end = line.find('"', p + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(p + 1, end - p - 1);
  return true;
}

RecordKind kind_from_name(const std::string& name, std::size_t line_no) {
  if (name == "spawn") return RecordKind::kSpawn;
  if (name == "exec") return RecordKind::kExec;
  if (name == "steal") return RecordKind::kStealMsg;
  if (name == "dsteal") return RecordKind::kStealDirect;
  if (name == "idle") return RecordKind::kIdle;
  if (name == "dep") return RecordKind::kDep;
  fail("line " + std::to_string(line_no) + ": unknown record kind '" +
       name + "'");
}

template <typename T>
void put_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get_raw(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace

bool valid_kind(std::uint8_t k) noexcept {
  return k >= static_cast<std::uint8_t>(RecordKind::kSpawn) &&
         k <= static_cast<std::uint8_t>(RecordKind::kDep);
}

const char* kind_name(RecordKind k) noexcept {
  switch (k) {
    case RecordKind::kSpawn: return "spawn";
    case RecordKind::kExec: return "exec";
    case RecordKind::kStealMsg: return "steal";
    case RecordKind::kStealDirect: return "dsteal";
    case RecordKind::kIdle: return "idle";
    case RecordKind::kDep: return "dep";
  }
  return "?";
}

// --- derived views ----------------------------------------------------------

std::uint64_t Trace::spawn_count() const noexcept {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records)
    n += r.kind == static_cast<std::uint8_t>(RecordKind::kSpawn);
  return n;
}

std::uint64_t Trace::exec_count() const noexcept {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records)
    n += r.kind == static_cast<std::uint8_t>(RecordKind::kExec);
  return n;
}

std::uint64_t Trace::makespan_cycles() const noexcept {
  std::uint64_t lo = ~0ull, hi = 0;
  for (const TraceRecord& r : records) {
    if (r.kind != static_cast<std::uint8_t>(RecordKind::kExec)) continue;
    lo = std::min(lo, r.t0);
    hi = std::max(hi, r.t1);
  }
  return hi > lo ? hi - lo : 0;
}

std::vector<std::uint64_t> Trace::busy_per_worker() const {
  std::vector<std::uint64_t> busy(nworkers, 0);
  for (const TraceRecord& r : records) {
    if (r.kind != static_cast<std::uint8_t>(RecordKind::kExec)) continue;
    if (r.worker < busy.size()) busy[r.worker] += r.ref;
  }
  return busy;
}

std::uint64_t Trace::dag_fingerprint() const {
  // Children per parent, in record order. Record order within one worker
  // is write order, and all spawns of one parent happen on the worker
  // executing that parent, so per-parent child order is well-defined.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> children;
  std::unordered_set<std::uint64_t> spawned;
  std::vector<std::uint64_t> order;  // spawn ids in record order
  for (const TraceRecord& r : records) {
    if (r.kind != static_cast<std::uint8_t>(RecordKind::kSpawn)) continue;
    spawned.insert(r.id);
    order.push_back(r.id);
  }
  std::vector<std::uint64_t> roots;
  for (const TraceRecord& r : records) {
    if (r.kind != static_cast<std::uint8_t>(RecordKind::kSpawn)) continue;
    if (r.ref != 0 && spawned.count(r.ref) != 0)
      children[r.ref].push_back(r.id);
    else
      roots.push_back(r.id);
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  // Iterative preorder DFS; children pushed in reverse so they pop in
  // record order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stack;  // (id, depth)
  for (auto it = roots.rbegin(); it != roots.rend(); ++it)
    stack.push_back({*it, 0});
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const auto cit = children.find(id);
    const std::uint64_t nkids =
        cit == children.end() ? 0 : cit->second.size();
    h = mix64(h ^ mix64(depth * 0x100000001b3ull + nkids));
    if (cit != children.end())
      for (auto it = cit->second.rbegin(); it != cit->second.rend(); ++it)
        stack.push_back({*it, depth + 1});
  }
  return h;
}

void Trace::validate() const {
  std::unordered_set<std::uint64_t> ids;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (!valid_kind(r.kind))
      fail(rec_prefix(i) + "bad kind " + std::to_string(r.kind));
    if (nworkers != 0 && r.worker >= nworkers)
      fail(rec_prefix(i) + "worker " + std::to_string(r.worker) +
           " out of range [0," + std::to_string(nworkers) + ")");
    switch (static_cast<RecordKind>(r.kind)) {
      case RecordKind::kSpawn:
        if (r.id == 0) fail(rec_prefix(i) + "spawn with task id 0");
        if (!ids.insert(r.id).second)
          fail(rec_prefix(i) + "duplicate spawn of task id " +
               std::to_string(r.id));
        break;
      case RecordKind::kExec:
        if (r.id == 0) fail(rec_prefix(i) + "exec with task id 0");
        if (r.t1 < r.t0)
          fail(rec_prefix(i) + "exec interval ends before it starts");
        break;
      case RecordKind::kIdle:
        if (r.t1 < r.t0)
          fail(rec_prefix(i) + "idle interval ends before it starts");
        break;
      case RecordKind::kDep:
        if (r.id == 0) fail(rec_prefix(i) + "dep with task id 0");
        if (r.aux > 2)
          fail(rec_prefix(i) + "dep mode " + std::to_string(r.aux) +
               " out of range [0,2]");
        break;
      case RecordKind::kStealMsg:
      case RecordKind::kStealDirect:
        if (nworkers != 0 && r.aux >= nworkers)
          fail(rec_prefix(i) + "steal peer " + std::to_string(r.aux) +
               " out of range [0," + std::to_string(nworkers) + ")");
        break;
    }
  }
}

// --- binary encoding --------------------------------------------------------

void write_binary(const Trace& tr, std::ostream& os) {
  const std::string backend = sanitized(tr.backend);
  const std::string topology = sanitized(tr.topology);
  put_raw(os, kTraceMagic);
  put_raw(os, tr.version);
  put_raw(os, tr.nworkers);
  put_raw(os, std::uint32_t{0});  // reserved
  put_raw(os, tr.cycles_per_us);
  put_raw(os, static_cast<std::uint32_t>(backend.size()));
  os.write(backend.data(), static_cast<std::streamsize>(backend.size()));
  put_raw(os, static_cast<std::uint32_t>(topology.size()));
  os.write(topology.data(), static_cast<std::streamsize>(topology.size()));
  put_raw(os, static_cast<std::uint64_t>(tr.records.size()));
  for (const TraceRecord& r : tr.records) put_raw(os, r);
}

Trace read_binary(std::istream& is) {
  Trace tr;
  std::uint32_t magic = 0, reserved = 0;
  if (!get_raw(is, &magic)) fail("truncated header: missing magic");
  if (magic != kTraceMagic)
    fail("not an xtask trace (bad magic 0x" + [&] {
      char b[16];
      std::snprintf(b, sizeof(b), "%08x", magic);
      return std::string(b);
    }() + ")");
  if (!get_raw(is, &tr.version)) fail("truncated header: missing version");
  if (tr.version != kTraceVersion)
    fail("unsupported trace version " + std::to_string(tr.version) +
         " (supported: " + std::to_string(kTraceVersion) + ")");
  if (!get_raw(is, &tr.nworkers) || !get_raw(is, &reserved) ||
      !get_raw(is, &tr.cycles_per_us))
    fail("truncated header: missing machine fields");
  constexpr std::uint32_t kMaxMeta = 1u << 20;
  std::uint32_t len = 0;
  if (!get_raw(is, &len)) fail("truncated header: missing backend length");
  if (len > kMaxMeta)
    fail("header backend string length " + std::to_string(len) +
         " exceeds limit " + std::to_string(kMaxMeta));
  tr.backend.resize(len);
  is.read(tr.backend.data(), static_cast<std::streamsize>(len));
  if (is.gcount() != static_cast<std::streamsize>(len))
    fail("truncated header: backend string cut short");
  if (!get_raw(is, &len)) fail("truncated header: missing topology length");
  if (len > kMaxMeta)
    fail("header topology string length " + std::to_string(len) +
         " exceeds limit " + std::to_string(kMaxMeta));
  tr.topology.resize(len);
  is.read(tr.topology.data(), static_cast<std::streamsize>(len));
  if (is.gcount() != static_cast<std::streamsize>(len))
    fail("truncated header: topology string cut short");
  std::uint64_t nrecords = 0;
  if (!get_raw(is, &nrecords)) fail("truncated header: missing record count");
  // A corrupt count must not pre-allocate unbounded memory: reserve is
  // capped and the loop below fails at the first short read.
  tr.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nrecords, 1u << 20)));
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    TraceRecord r;
    if (!get_raw(is, &r))
      fail("truncated at record " + std::to_string(i) + " of " +
           std::to_string(nrecords));
    if (!valid_kind(r.kind))
      fail(rec_prefix(static_cast<std::size_t>(i)) + "bad kind " +
           std::to_string(r.kind));
    tr.records.push_back(r);
  }
  return tr;
}

// --- JSONL encoding ---------------------------------------------------------

void write_jsonl(const Trace& tr, std::ostream& os) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"xtask_trace\":%u,\"nworkers\":%u,"
                "\"cycles_per_us\":%.3f,",
                tr.version, tr.nworkers, tr.cycles_per_us);
  os << buf << "\"backend\":\"" << sanitized(tr.backend)
     << "\",\"topology\":\"" << sanitized(tr.topology) << "\"}\n";
  for (const TraceRecord& r : tr.records) {
    std::snprintf(buf, sizeof(buf),
                  "{\"k\":\"%s\",\"w\":%u,\"z\":%u,\"aux\":%u,"
                  "\"id\":%" PRIu64 ",\"t0\":%" PRIu64 ",\"t1\":%" PRIu64
                  ",\"ref\":%" PRIu64 "}\n",
                  kind_name(static_cast<RecordKind>(r.kind)), r.worker,
                  r.zone, r.aux, r.id, r.t0, r.t1, r.ref);
    os << buf;
  }
}

Trace read_jsonl(std::istream& is) {
  Trace tr;
  std::string line;
  std::size_t line_no = 0;
  // Header line (blank lines are tolerated before it).
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") != std::string::npos) break;
    line.clear();
  }
  if (line.empty()) fail("empty trace: missing header line");
  std::uint64_t version = 0;
  if (!get_u64(line, "xtask_trace", &version))
    fail("line " + std::to_string(line_no) +
         ": not an xtask trace header (missing \"xtask_trace\")");
  if (version != kTraceVersion)
    fail("unsupported trace version " + std::to_string(version) +
         " (supported: " + std::to_string(kTraceVersion) + ")");
  tr.version = static_cast<std::uint32_t>(version);
  std::uint64_t nw = 0;
  if (!get_u64(line, "nworkers", &nw) || nw > 0xffff)
    fail("line " + std::to_string(line_no) +
         ": header missing or bad \"nworkers\"");
  tr.nworkers = static_cast<std::uint32_t>(nw);
  get_double(line, "cycles_per_us", &tr.cycles_per_us);
  get_string(line, "backend", &tr.backend);
  get_string(line, "topology", &tr.topology);

  std::size_t rec_idx = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string where = "line " + std::to_string(line_no) +
                              " (record " + std::to_string(rec_idx) + "): ";
    std::string kname;
    if (!get_string(line, "k", &kname))
      fail(where + "missing field \"k\"");
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(kind_from_name(kname, line_no));
    std::uint64_t v = 0;
    if (!get_u64(line, "w", &v) || v > 0xffff)
      fail(where + "missing or bad field \"w\"");
    r.worker = static_cast<std::uint16_t>(v);
    if (get_u64(line, "z", &v)) {
      if (v > 0xff) fail(where + "bad field \"z\"");
      r.zone = static_cast<std::uint8_t>(v);
    }
    if (get_u64(line, "aux", &v)) {
      if (v > 0xffffffffull) fail(where + "bad field \"aux\"");
      r.aux = static_cast<std::uint32_t>(v);
    }
    get_u64(line, "id", &r.id);
    get_u64(line, "t0", &r.t0);
    get_u64(line, "t1", &r.t1);
    get_u64(line, "ref", &r.ref);
    tr.records.push_back(r);
    ++rec_idx;
  }
  return tr;
}

// --- file helpers -----------------------------------------------------------

namespace {
bool jsonl_path(const std::string& path) {
  const auto ends_with = [&](const char* suf) {
    const std::size_t n = std::strlen(suf);
    return path.size() >= n && path.compare(path.size() - n, n, suf) == 0;
  };
  return ends_with(".jsonl") || ends_with(".json");
}
}  // namespace

void write_file(const Trace& tr, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) fail("cannot open '" + path + "' for writing");
  if (jsonl_path(path))
    write_jsonl(tr, f);
  else
    write_binary(tr, f);
  if (!f.good()) fail("short write to '" + path + "'");
}

Trace read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) fail("cannot open trace file '" + path + "'");
  const int first = f.peek();
  if (first == '{' || first == ' ' || first == '\n')
    return read_jsonl(f);
  return read_binary(f);
}

}  // namespace xtask::trace
