#include "trace/recorder.hpp"

namespace xtask::trace {

namespace {

std::uint64_t ptr_hash(const void* p) noexcept {
  // SplitMix64 finalizer over the address; low bits of a Task* are dead
  // (192-byte descriptors), so mix before masking.
  std::uint64_t x = reinterpret_cast<std::uintptr_t>(p);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Recorder::Recorder(int nworkers, double cycles_per_us, std::string backend,
                   std::string topology, std::vector<std::uint8_t> zones)
    : nworkers_(nworkers),
      cycles_per_us_(cycles_per_us),
      backend_(std::move(backend)),
      topology_(std::move(topology)),
      zones_(std::move(zones)),
      map_(new Slot[kMapSlots]) {
  per_worker_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i)
    per_worker_.push_back(std::make_unique<PerWorker>());
}

bool Recorder::map_insert(const void* task, std::uint64_t id) noexcept {
  std::size_t i = ptr_hash(task) & (kMapSlots - 1);
  for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
    Slot& s = map_[i];
    const void* k = s.key.load(std::memory_order_relaxed);
    if (k == nullptr || k == tombstone()) {
      // Publish the id first, then claim the slot with a release CAS so
      // the executing worker's acquire load of the key sees the id.
      s.id.store(id, std::memory_order_relaxed);
      if (s.key.compare_exchange_strong(k, task, std::memory_order_release,
                                        std::memory_order_relaxed))
        return true;
      // Lost the slot to a concurrent insert; probe on.
    }
    i = (i + 1) & (kMapSlots - 1);
  }
  return false;  // map saturated: caller degrades to a synthesized id
}

std::uint64_t Recorder::map_take(const void* task) noexcept {
  std::size_t i = ptr_hash(task) & (kMapSlots - 1);
  for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
    Slot& s = map_[i];
    const void* k = s.key.load(std::memory_order_acquire);
    if (k == task) {
      const std::uint64_t id = s.id.load(std::memory_order_relaxed);
      // Erase with a tombstone so later probes for colliding keys keep
      // walking; a single CAS suffices — only the executing worker of
      // this task erases this key.
      s.key.store(tombstone(), std::memory_order_relaxed);
      return id;
    }
    if (k == nullptr) return 0;  // never inserted (or already past it)
    i = (i + 1) & (kMapSlots - 1);
  }
  return 0;
}

void Recorder::append(int w, const TraceRecord& r) noexcept {
  per_worker_[static_cast<std::size_t>(w)]->records.push_back(r);
}

std::uint64_t Recorder::on_spawn(int w, const void* task,
                                 std::uint64_t now) noexcept {
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
  const std::uint64_t id = fresh_id(w);
  const std::uint64_t parent = pw.stack.empty() ? 0 : pw.stack.back().id;
  // On map saturation the exec side synthesizes a replacement spawn (and
  // counts it); this record still stands as the structural ground truth.
  map_insert(task, id);
  pw.last_spawn = id;
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kSpawn);
  r.zone = zones_[static_cast<std::size_t>(w)];
  r.worker = static_cast<std::uint16_t>(w);
  r.id = id;
  r.t0 = now;
  r.ref = parent;
  append(w, r);
  return id;
}

void Recorder::on_dep(int w, std::uint32_t mode, std::uint64_t addr) noexcept {
  const std::uint64_t id =
      per_worker_[static_cast<std::size_t>(w)]->last_spawn;
  if (id == 0) return;  // no preceding spawn: drop, never crash
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kDep);
  r.zone = zones_[static_cast<std::size_t>(w)];
  r.worker = static_cast<std::uint16_t>(w);
  r.aux = mode;
  r.id = id;
  r.ref = addr;
  append(w, r);
}

void Recorder::on_exec_begin(int w, const void* task,
                             std::uint64_t now) noexcept {
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
  std::uint64_t id = map_take(task);
  if (id == 0) {
    // Root task, or the spawn-side insert was crowded out: synthesize the
    // spawn here so exec records always pair. Parent = our current frame
    // (exact for the root; best-effort under map overflow).
    id = fresh_id(w);
    ++pw.synthesized;
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(RecordKind::kSpawn);
    r.zone = zones_[static_cast<std::size_t>(w)];
    r.worker = static_cast<std::uint16_t>(w);
    r.id = id;
    r.t0 = now;
    r.ref = pw.stack.empty() ? 0 : pw.stack.back().id;
    append(w, r);
  }
  if (!pw.stack.empty()) {
    Frame& top = pw.stack.back();
    if (top.pause_depth == 0) top.self += now - top.resume;
  }
  Frame f;
  f.id = id;
  f.begin = now;
  f.resume = now;
  pw.stack.push_back(f);
}

void Recorder::on_exec_end(int w, std::uint64_t now) noexcept {
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
  if (pw.stack.empty()) return;  // unmatched end: drop, never crash
  Frame f = pw.stack.back();
  pw.stack.pop_back();
  if (f.pause_depth == 0) f.self += now - f.resume;
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kExec);
  r.zone = zones_[static_cast<std::size_t>(w)];
  r.worker = static_cast<std::uint16_t>(w);
  r.id = f.id;
  r.t0 = f.begin;
  r.t1 = now;
  r.ref = f.self;
  append(w, r);
  if (!pw.stack.empty()) {
    Frame& top = pw.stack.back();
    if (top.pause_depth == 0) top.resume = now;
  }
}

void Recorder::on_pause(int w, std::uint64_t now) noexcept {
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
  if (pw.stack.empty()) return;
  Frame& top = pw.stack.back();
  if (top.pause_depth++ == 0) top.self += now - top.resume;
}

void Recorder::on_resume(int w, std::uint64_t now) noexcept {
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(w)];
  if (pw.stack.empty()) return;
  Frame& top = pw.stack.back();
  if (top.pause_depth > 0 && --top.pause_depth == 0) top.resume = now;
}

void Recorder::on_steal(int w, int peer, std::uint64_t count, bool direct,
                        std::uint64_t now) noexcept {
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(direct ? RecordKind::kStealDirect
                                            : RecordKind::kStealMsg);
  r.zone = zones_[static_cast<std::size_t>(w)];
  r.worker = static_cast<std::uint16_t>(w);
  r.aux = static_cast<std::uint32_t>(peer);
  r.t0 = now;
  r.t1 = now;
  r.ref = count;
  append(w, r);
}

void Recorder::on_idle(int w, std::uint64_t enter,
                       std::uint64_t exit) noexcept {
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kIdle);
  r.zone = zones_[static_cast<std::size_t>(w)];
  r.worker = static_cast<std::uint16_t>(w);
  r.t0 = enter;
  r.t1 = exit;
  append(w, r);
}

Trace Recorder::build() const {
  Trace tr;
  tr.nworkers = static_cast<std::uint32_t>(nworkers_);
  tr.cycles_per_us = cycles_per_us_;
  tr.backend = backend_;
  tr.topology = topology_;
  std::size_t total = 0;
  for (const auto& pw : per_worker_) total += pw->records.size();
  tr.records.reserve(total);
  for (const auto& pw : per_worker_)
    tr.records.insert(tr.records.end(), pw->records.begin(),
                      pw->records.end());
  return tr;
}

void Recorder::clear() {
  for (auto& pw : per_worker_) {
    pw->records.clear();
    pw->stack.clear();
    pw->last_spawn = 0;
    pw->synthesized = 0;
  }
  for (std::size_t i = 0; i < kMapSlots; ++i) {
    map_[i].key.store(nullptr, std::memory_order_relaxed);
    map_[i].id.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Recorder::synthesized() const noexcept {
  std::uint64_t n = 0;
  for (const auto& pw : per_worker_) n += pw->synthesized;
  return n;
}

}  // namespace xtask::trace
