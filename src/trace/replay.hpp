// Trace replay: re-run a recorded task structure on either executor.
//
// A trace's spawn records define a forest (parent id 0 / unknown = root)
// and its exec records give each task a measured self-cost in cycles.
// Replay canonicalizes every task to the same shape on both executors:
//
//     spawn children (in recorded order) → do self-cost work → taskwait
//
// On the real runtime the "work" is a calibrated rdtscp spin of the
// recorded cycles, driven through the type-erased AnyRuntime/AnyContext
// surface so one driver replays on every registry backend
// (`narp`/`naws`/adaptive/gomp/...). On the simulator the work is
// SimContext::compute(cycles), so the sim's cost model (queue ops, steal
// protocol, NUMA inflation) prices the *scheduling* of the identical
// structure — which is what the cross-calibration in bench_replay fits.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "registry/any_runtime.hpp"
#include "sim/engine.hpp"
#include "trace/format.hpp"

namespace xtask::trace {

/// One task of the replayable forest.
struct ReplayNode {
  std::uint64_t id = 0;
  std::uint64_t self_cycles = 0;
  std::vector<std::uint32_t> children;  // indices into ReplayTree::nodes
};

/// The spawn forest of a trace, indexed for replay.
struct ReplayTree {
  std::vector<ReplayNode> nodes;
  std::vector<std::uint32_t> roots;  // indices, in record order

  std::size_t size() const noexcept { return nodes.size(); }
  std::uint64_t total_self_cycles() const noexcept;

  /// Build from a trace. Throws TraceError when an exec record names an
  /// unknown task id (the diagnostics name the record index).
  static ReplayTree build(const Trace& tr);
};

/// Busy-spin for ~`cycles` rdtscp cycles (the real-replay work body).
void spin_cycles(std::uint64_t cycles) noexcept;

struct RealReplayResult {
  std::uint64_t makespan_cycles = 0;  // rdtscp span of the whole region
  std::uint64_t tasks = 0;            // tasks the replay spawned (= tree)
};

/// Replay on a registry-constructed runtime. `work_scale` scales every
/// self-cost (1.0 = recorded cycles). The tree must outlive the call.
RealReplayResult replay_real(AnyRuntime& rt, const ReplayTree& tree,
                             double work_scale = 1.0);

/// Replay on the simulator: same canonical structure, work charged as
/// ctx.compute(self_cycles * work_scale) under `cfg`'s cost model.
sim::SimResult replay_sim(const sim::SimConfig& cfg, const ReplayTree& tree,
                          double work_scale = 1.0);

}  // namespace xtask::trace
