#include "trace/replay.hpp"

#include <string>
#include <unordered_map>

#include "core/common.hpp"

namespace xtask::trace {

std::uint64_t ReplayTree::total_self_cycles() const noexcept {
  std::uint64_t sum = 0;
  for (const ReplayNode& n : nodes) sum += n.self_cycles;
  return sum;
}

ReplayTree ReplayTree::build(const Trace& tr) {
  ReplayTree tree;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  for (std::size_t i = 0; i < tr.records.size(); ++i) {
    const TraceRecord& r = tr.records[i];
    if (r.kind != static_cast<std::uint8_t>(RecordKind::kSpawn)) continue;
    if (index.count(r.id) != 0)
      throw TraceError("record " + std::to_string(i) +
                       ": duplicate spawn of task id " + std::to_string(r.id));
    index.emplace(r.id, static_cast<std::uint32_t>(tree.nodes.size()));
    ReplayNode n;
    n.id = r.id;
    tree.nodes.push_back(std::move(n));
  }
  // Second pass links children in record order and attaches exec costs.
  for (std::size_t i = 0; i < tr.records.size(); ++i) {
    const TraceRecord& r = tr.records[i];
    if (r.kind == static_cast<std::uint8_t>(RecordKind::kSpawn)) {
      const std::uint32_t self = index.at(r.id);
      const auto pit = index.find(r.ref);
      if (r.ref != 0 && pit != index.end())
        tree.nodes[pit->second].children.push_back(self);
      else
        tree.roots.push_back(self);
    } else if (r.kind == static_cast<std::uint8_t>(RecordKind::kExec)) {
      const auto it = index.find(r.id);
      if (it == index.end())
        throw TraceError("record " + std::to_string(i) +
                         ": exec references unknown task id " +
                         std::to_string(r.id));
      tree.nodes[it->second].self_cycles += r.ref;
    }
  }
  return tree;
}

void spin_cycles(std::uint64_t cycles) noexcept {
  if (cycles == 0) return;
  const std::uint64_t t0 = rdtscp();
  // rdtscp self-measures the spin, so no iteration calibration is needed;
  // each poll costs a few tens of cycles, bounding overshoot.
  while (rdtscp() - t0 < cycles) {
  }
}

namespace {

/// Canonical replay body: spawn recorded children in order, burn the
/// recorded self cost, wait for the subtree. Shared by every backend via
/// the type-erased context.
void replay_node_real(AnyContext& ctx, const ReplayTree& tree,
                      std::uint32_t idx, double scale) {
  const ReplayNode& n = tree.nodes[idx];
  for (const std::uint32_t c : n.children)
    ctx.spawn([&tree, c, scale](AnyContext& inner) {
      replay_node_real(inner, tree, c, scale);
    });
  spin_cycles(
      static_cast<std::uint64_t>(static_cast<double>(n.self_cycles) * scale));
  if (!n.children.empty()) ctx.taskwait();
}

void replay_node_sim(sim::SimContext& ctx, const ReplayTree& tree,
                     std::uint32_t idx, double scale) {
  const ReplayNode& n = tree.nodes[idx];
  for (const std::uint32_t c : n.children)
    ctx.spawn([&tree, c, scale](sim::SimContext& inner) {
      replay_node_sim(inner, tree, c, scale);
    });
  ctx.compute(
      static_cast<std::uint64_t>(static_cast<double>(n.self_cycles) * scale));
  if (!n.children.empty()) ctx.taskwait();
}

}  // namespace

RealReplayResult replay_real(AnyRuntime& rt, const ReplayTree& tree,
                             double work_scale) {
  RealReplayResult res;
  res.tasks = tree.size();
  if (tree.roots.empty()) return res;
  const std::uint64_t t0 = rdtscp();
  rt.run([&tree, work_scale](AnyContext& ctx) {
    if (tree.roots.size() == 1) {
      // The common shape: the region root *is* the trace's root task.
      replay_node_real(ctx, tree, tree.roots[0], work_scale);
      return;
    }
    for (const std::uint32_t r : tree.roots)
      ctx.spawn([&tree, r, work_scale](AnyContext& inner) {
        replay_node_real(inner, tree, r, work_scale);
      });
    ctx.taskwait();
  });
  res.makespan_cycles = rdtscp() - t0;
  return res;
}

sim::SimResult replay_sim(const sim::SimConfig& cfg, const ReplayTree& tree,
                          double work_scale) {
  sim::SimEngine eng(cfg);
  if (tree.roots.empty()) return eng.run([](sim::SimContext&) {});
  return eng.run([&tree, work_scale](sim::SimContext& ctx) {
    if (tree.roots.size() == 1) {
      replay_node_sim(ctx, tree, tree.roots[0], work_scale);
      return;
    }
    for (const std::uint32_t r : tree.roots)
      ctx.spawn([&tree, r, work_scale](sim::SimContext& inner) {
        replay_node_sim(inner, tree, r, work_scale);
      });
    ctx.taskwait();
  });
}

}  // namespace xtask::trace
