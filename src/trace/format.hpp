// Versioned scheduler-trace format: the portable record of what a task
// region *did* — every task spawn, every execution interval (with its
// measured self-cost in cycles), every steal migration, and every idle
// episode — captured from the real runtime (trace=record) or from the
// simulator's virtual clocks. A trace is the unit of exchange for the
// replay engine (replay.hpp): the same file re-runs on the real runtime
// (calibrated spin work) and on the simulator (sim::SimContext::compute),
// which is what makes sim↔real cross-calibration and golden-trace
// regression possible.
//
// Two encodings of the same Trace:
//   * binary  — "XTRC" magic, fixed 40-byte records; compact, fast.
//   * JSONL   — one JSON object per line, header first; diff-able, which
//               is what the checked-in golden traces use.
// Both carry the same version number and fail loudly — naming the bad
// record — on truncation, corruption, or version skew (TraceError).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace xtask::trace {

inline constexpr std::uint32_t kTraceMagic = 0x43525458u;  // "XTRC" LE
inline constexpr std::uint32_t kTraceVersion = 1;

/// What one record describes. Values are part of the on-disk format:
/// append new kinds, never renumber.
enum class RecordKind : std::uint8_t {
  kSpawn = 1,        // task created: id, ref=parent id, t0=tsc
  kExec = 2,         // task ran: id, t0=begin, t1=end, ref=self cycles
  kStealMsg = 3,     // NA-WS migration: worker=victim, aux=thief, ref=count
  kStealDirect = 4,  // direct steal: worker=thief, aux=victim, ref=count
  kIdle = 5,         // idle episode: worker, t0=enter, t1=exit
  kDep = 6,          // dependence item: id=task, ref=address, aux=mode
};

/// True for values a well-formed trace may contain.
bool valid_kind(std::uint8_t k) noexcept;
const char* kind_name(RecordKind k) noexcept;

/// One fixed-size trace record. Field meaning depends on `kind` (see
/// RecordKind); unused fields are zero. Exactly 40 bytes with no padding
/// so the binary encoding is the in-memory layout.
struct TraceRecord {
  std::uint8_t kind = 0;
  std::uint8_t zone = 0;     // NUMA zone of `worker`
  std::uint16_t worker = 0;  // recording worker id
  std::uint32_t aux = 0;     // kind-specific (peer id, ndeps, dep mode)
  std::uint64_t id = 0;      // task id (0 = not task-scoped)
  std::uint64_t t0 = 0;      // interval start (cycles; tsc or virtual)
  std::uint64_t t1 = 0;      // interval end (0 for instant records)
  std::uint64_t ref = 0;     // kind-specific (parent id, count, cycles)
};
static_assert(sizeof(TraceRecord) == 40, "on-disk record layout");

/// Parse/validation failure. The message names the offending record
/// ("record 17: ..."), line ("line 4: ...") or header field, so a corrupt
/// golden file or a version-skewed artifact is diagnosable from the
/// exception alone.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An in-memory trace: header metadata plus the record stream. Records
/// are ordered per-worker (each worker's records appear in the order it
/// wrote them); cross-worker order is unspecified — consumers needing a
/// global timeline sort by t0 themselves.
struct Trace {
  std::uint32_t version = kTraceVersion;
  std::uint32_t nworkers = 0;
  double cycles_per_us = 0.0;   // clock rate of t0/t1 (0 = unknown)
  std::string backend;          // producing backend spec (free-form)
  std::string topology;         // producing topology (free-form)
  std::vector<TraceRecord> records;

  // --- derived views ------------------------------------------------------
  std::uint64_t spawn_count() const noexcept;
  std::uint64_t exec_count() const noexcept;
  /// Wall span covered by exec records: max(t1) - min(t0), 0 when empty.
  std::uint64_t makespan_cycles() const noexcept;
  /// Per-worker sum of exec self-cost cycles (index = worker id).
  std::vector<std::uint64_t> busy_per_worker() const;
  /// Order-sensitive structural hash of the spawn DAG: fold over a
  /// preorder DFS of the spawn tree (roots and children in record order),
  /// mixing depth and child count per node — independent of task ids,
  /// workers, timestamps, and costs, so a replayed re-recording of the
  /// same structure fingerprints identically even though every id and
  /// every timing differs. Dependence records are excluded (replay
  /// reproduces structure through spawn order, not dep registration).
  std::uint64_t dag_fingerprint() const;

  /// Structural validation beyond what parsing enforces: worker ids in
  /// range, exec intervals ordered, spawn ids nonzero and unique.
  /// Throws TraceError naming the first offending record.
  void validate() const;
};

// --- binary encoding --------------------------------------------------------
void write_binary(const Trace& tr, std::ostream& os);
Trace read_binary(std::istream& is);

// --- JSONL encoding ---------------------------------------------------------
// First line: {"xtask_trace":1,"nworkers":N,"cycles_per_us":F,
//              "backend":"...","topology":"..."}
// Then one object per record:
//              {"k":"spawn","w":0,"z":0,"aux":0,"id":1,"t0":...,"t1":0,
//               "ref":0}
void write_jsonl(const Trace& tr, std::ostream& os);
Trace read_jsonl(std::istream& is);

// --- file helpers -----------------------------------------------------------
/// Write by extension: ".jsonl"/".json" → JSONL, anything else → binary.
void write_file(const Trace& tr, const std::string& path);
/// Read sniffing the leading bytes (binary magic vs '{').
Trace read_file(const std::string& path);

}  // namespace xtask::trace
